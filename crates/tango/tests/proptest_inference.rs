//! Property-based invariants of the inference layer.
//!
//! * Algorithm 1's estimates are always within `[0, m]`, layer estimates
//!   sum to ≈ m, and the probe leaves exactly the rules it installed.
//! * Clustering always assigns every sample to exactly one cluster and
//!   cluster sizes sum to the sample count.
//! * The policy-probe initialization plan is always pairwise balanced,
//!   whatever the cache size.

use ofwire::types::Dpid;
use proptest::prelude::*;
use switchsim::cache::CachePolicy;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::cluster::{cluster_rtts, kmeans_1d};
use tango::infer_policy::{initialization_plan, PolicyProbeConfig};
use tango::infer_size::{probe_sizes, SizeProbeConfig};
use tango::pattern::RuleKind;
use tango::probe::ProbingEngine;
use tango::stats::pearson;

fn arb_policy() -> impl Strategy<Value = CachePolicy> {
    prop_oneof![
        Just(CachePolicy::fifo()),
        Just(CachePolicy::lru()),
        Just(CachePolicy::lfu()),
        Just(CachePolicy::priority()),
        Just(CachePolicy::priority_then_lru()),
        Just(CachePolicy::lfu_then_fifo()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn size_probe_invariants_hold_for_any_policy(
        policy in arb_policy(),
        tcam in 40u64..150,
        seed in any::<u64>(),
    ) {
        let mut tb = Testbed::new(seed);
        let dpid = Dpid(1);
        tb.attach_default(dpid, SwitchProfile::generic_cached(tcam, policy));
        let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
        let cfg = SizeProbeConfig {
            max_flows: (tcam * 2) as usize,
            trials_per_level: 64,
            seed,
            ..SizeProbeConfig::default()
        };
        let est = probe_sizes(&mut eng, &cfg).expect("size probe completes");
        prop_assert_eq!(est.m, (tcam * 2) as usize);
        // Rules left behind = exactly the installed probe rules.
        prop_assert_eq!(tb.switch(dpid).rule_count(), est.m);
        // Level estimates live in [0, m] and sum to ≈ m.
        let mut total = 0.0;
        for l in &est.levels {
            prop_assert!(l.estimated_size >= 0.0);
            prop_assert!(l.estimated_size <= est.m as f64 + 1e-9);
            total += l.estimated_size;
        }
        let m_f = est.m as f64;
        prop_assert!(
            (total - m_f).abs() / m_f < 0.35,
            "layer estimates sum to {total} for m={m_f}"
        );
        // Sweep counts are exact.
        let swept: usize = est.levels.iter().map(|l| l.swept_count).sum();
        prop_assert_eq!(swept, est.m);
    }

    #[test]
    fn clustering_partitions_every_sample(
        samples in proptest::collection::vec(0.1f64..20.0, 1..300),
    ) {
        let c = cluster_rtts(&samples);
        prop_assert!(c.k() >= 1);
        prop_assert_eq!(c.sizes.iter().sum::<usize>(), samples.len());
        prop_assert_eq!(c.boundaries.len(), c.k() - 1);
        // classify() maps every sample into range.
        for &s in &samples {
            prop_assert!(c.classify(s) < c.k());
        }
        // Centers are sorted ascending.
        for w in c.centers.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn kmeans_wcss_decreases_with_k(
        samples in proptest::collection::vec(0.1f64..20.0, 8..200),
    ) {
        let (_, w1) = kmeans_1d(&samples, 1);
        let (_, w2) = kmeans_1d(&samples, 2);
        let (_, w3) = kmeans_1d(&samples, 3);
        prop_assert!(w2 <= w1 + 1e-9);
        prop_assert!(w3 <= w2 + 1e-9);
    }

    #[test]
    fn initialization_plan_always_balanced(
        cache_size in 4usize..400,
        hold_priority in any::<bool>(),
        hold_traffic in any::<bool>(),
    ) {
        let cfg = PolicyProbeConfig::default();
        let s = 2 * cache_size;
        let plan = initialization_plan(s, hold_priority, hold_traffic, &cfg);
        prop_assert_eq!(plan.len(), s);
        // use_rank is a permutation.
        let mut ranks: Vec<u32> = plan.iter().map(|f| f.use_rank).collect();
        ranks.sort_unstable();
        prop_assert_eq!(ranks, (0..s as u32).collect::<Vec<_>>());
        // Splits are exactly half/half (unless held).
        if !hold_priority {
            let hi = plan.iter().filter(|f| f.priority == cfg.prio_high).count();
            prop_assert_eq!(hi, s / 2);
        }
        if !hold_traffic {
            let hi = plan.iter().filter(|f| f.traffic == cfg.traffic_high).count();
            // (i/2)%2 splits exactly in half when s % 4 == 0, within 2
            // otherwise.
            prop_assert!((hi as i64 - (s / 2) as i64).abs() <= 2);
        }
        // Attribute vectors decorrelate (skip held-constant ones, where
        // pearson is undefined).
        let vecs: Vec<Vec<f64>> = vec![
            plan.iter().map(|f| f64::from(f.id)).collect(),
            plan.iter().map(|f| f64::from(f.use_rank)).collect(),
            plan.iter().map(|f| f64::from(f.priority)).collect(),
            plan.iter().map(|f| f64::from(f.traffic)).collect(),
        ];
        for i in 0..vecs.len() {
            for j in i + 1..vecs.len() {
                if let Some(r) = pearson(&vecs[i], &vecs[j]) {
                    prop_assert!(
                        r.abs() < 0.35,
                        "attrs {i}/{j} correlate at {r} (s={s})"
                    );
                }
            }
        }
    }
}
