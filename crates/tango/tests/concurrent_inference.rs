//! Concurrent multi-switch inference interleaves in one simulator and
//! measures exactly what sequential probing measures.
//!
//! Two switches are attached to one testbed. Running their patterns
//! concurrently must (a) produce bit-identical `PatternResult`s to
//! running the same patterns one switch after the other, because every
//! switch's latency jitter comes from its own RNG stream, and (b) finish
//! in close to the slower switch's time, not the sum — the point of the
//! event-driven control path.

use ofwire::types::Dpid;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::concurrent::run_patterns;
use tango::pattern::{PriorityOrder, RuleKind, TangoPattern};
use tango::probe::{PatternResult, ProbingEngine};

fn testbed() -> Testbed {
    let mut tb = Testbed::new(0xfeed);
    tb.attach_default(Dpid(1), SwitchProfile::vendor1());
    tb.attach_default(Dpid(2), SwitchProfile::vendor2());
    tb
}

fn patterns() -> (TangoPattern, TangoPattern) {
    (
        TangoPattern::priority_insertion(200, PriorityOrder::Ascending, RuleKind::L3),
        TangoPattern::priority_insertion(200, PriorityOrder::Descending, RuleKind::L3),
    )
}

#[test]
fn concurrent_matches_sequential_and_overlaps() {
    let (p1, p2) = patterns();

    // Sequential: one switch fully probed, then the other.
    let mut seq_tb = testbed();
    let seq_start = seq_tb.now();
    let r1: PatternResult = ProbingEngine::new(&mut seq_tb, Dpid(1), RuleKind::L3)
        .run(&p1)
        .expect("sequential run 1");
    let r2: PatternResult = ProbingEngine::new(&mut seq_tb, Dpid(2), RuleKind::L3)
        .run(&p2)
        .expect("sequential run 2");
    let seq_elapsed = seq_tb.now().since(seq_start);

    // Concurrent: both programs interleaved in the same virtual time.
    let mut con_tb = testbed();
    let con_start = con_tb.now();
    let results =
        run_patterns(&mut con_tb, &[(Dpid(1), &p1), (Dpid(2), &p2)]).expect("concurrent run");
    let con_elapsed = con_tb.all_quiet_at().since(con_start);

    // (a) Measurements are bit-identical: each switch saw the exact same
    // op stream, timed by its own RNG stream.
    assert_eq!(results[0], r1);
    assert_eq!(results[1], r2);
    assert_eq!(con_tb.switch(Dpid(1)).rule_count(), 200);
    assert_eq!(con_tb.switch(Dpid(2)).rule_count(), 200);

    // (b) The runs overlap: concurrent time is well under the sum.
    assert!(
        con_elapsed.as_millis_f64() < 0.9 * seq_elapsed.as_millis_f64(),
        "concurrent {con_elapsed} should overlap, sequential total {seq_elapsed}"
    );
}

#[test]
fn concurrent_inference_feeds_identical_install_times() {
    // The quantity inference actually consumes — per-segment install
    // time — is identical between the two drivers, switch by switch.
    let (p1, p2) = patterns();
    let mut seq_tb = testbed();
    let seq = [
        ProbingEngine::new(&mut seq_tb, Dpid(1), RuleKind::L3)
            .run(&p1)
            .expect("sequential run 1"),
        ProbingEngine::new(&mut seq_tb, Dpid(2), RuleKind::L3)
            .run(&p2)
            .expect("sequential run 2"),
    ];
    let mut con_tb = testbed();
    let con = run_patterns(&mut con_tb, &[(Dpid(1), &p1), (Dpid(2), &p2)]).expect("concurrent run");
    for (s, c) in seq.iter().zip(&con) {
        assert_eq!(s.install_time(), c.install_time());
        assert_eq!(s.rtts_ms(), c.rtts_ms());
    }
}
