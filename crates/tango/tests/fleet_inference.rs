//! Fleet-scale adaptive inference is bit-identical to sequential
//! probing, across the full diversity of switch implementations.
//!
//! One testbed holds all four vendor profiles; `fleet::run_inference`
//! characterizes them concurrently over the shared control path. A
//! second, identically-seeded testbed runs the same probes one switch
//! at a time through the synchronous entry points. Every field of every
//! result — estimated sizes, RTT cluster centers, per-round policy
//! correlations — must be exactly equal, and the fleet run must finish
//! in well under the sequential wall-clock time.

use ofwire::types::Dpid;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::fleet::{run_inference, FleetJob};
use tango::infer_policy::{probe_policy, PolicyProbeConfig};
use tango::infer_size::{probe_sizes, SizeProbeConfig};
use tango::online::probe_headroom;
use tango::pattern::RuleKind;
use tango::probe::ProbingEngine;

/// All four profiles on one testbed, deterministically seeded.
fn testbed() -> Testbed {
    let mut tb = Testbed::new(0xf1ee7);
    tb.attach_default(Dpid(1), SwitchProfile::ovs());
    tb.attach_default(Dpid(2), SwitchProfile::vendor1());
    tb.attach_default(Dpid(3), SwitchProfile::vendor2());
    tb.attach_default(Dpid(4), SwitchProfile::vendor3());
    tb
}

const DPIDS: [Dpid; 4] = [Dpid(1), Dpid(2), Dpid(3), Dpid(4)];

fn size_config(dpid: Dpid) -> SizeProbeConfig {
    SizeProbeConfig {
        // Big enough to bound every vendor TCAM, small enough for a
        // debug-profile test (OVS never rejects, so its probe stops at
        // the cap).
        max_flows: 3000,
        trials_per_level: 48,
        seed: 0x5eed ^ dpid.0,
        ..SizeProbeConfig::default()
    }
}

#[test]
fn fleet_size_inference_matches_sequential_field_for_field() {
    // Sequential: each switch probed to completion before the next.
    let mut seq_tb = testbed();
    let seq_start = seq_tb.now();
    let seq: Vec<_> = DPIDS
        .iter()
        .map(|&d| {
            let mut eng = ProbingEngine::new(&mut seq_tb, d, RuleKind::L3);
            probe_sizes(&mut eng, &size_config(d)).expect("sequential size probe")
        })
        .collect();
    let seq_elapsed = seq_tb.now().since(seq_start);

    // Fleet: all four interleaved over one control path.
    let mut fleet_tb = testbed();
    let fleet_start = fleet_tb.now();
    let jobs: Vec<FleetJob> = DPIDS
        .iter()
        .map(|&d| FleetJob::size(d, RuleKind::L3, size_config(d)))
        .collect();
    let outcomes = run_inference(&mut fleet_tb, &jobs).expect("fleet size inference");
    let fleet_elapsed = fleet_tb.now().since(fleet_start);

    for ((&dpid, sequential), outcome) in DPIDS.iter().zip(&seq).zip(&outcomes) {
        let fleet = outcome.as_size().expect("size outcome");
        assert_eq!(
            fleet, sequential,
            "fleet and sequential size estimates diverge for {dpid}"
        );
        // Both testbeds hold the same post-probe rule state.
        assert_eq!(
            fleet_tb.switch(dpid).rule_count(),
            seq_tb.switch(dpid).rule_count()
        );
    }
    // The headline vendor numbers still come out exactly.
    assert_eq!(outcomes[2].as_size().unwrap().m, 2560, "Switch #2 TCAM");
    assert_eq!(outcomes[3].as_size().unwrap().m, 767, "Switch #3 TCAM");

    // And the interleaving actually buys wall-clock time. (The bound is
    // loose because one slow switch dominates the fleet: its probe alone
    // is ~2/3 of the sequential sum.)
    assert!(
        fleet_elapsed.as_millis_f64() < 0.8 * seq_elapsed.as_millis_f64(),
        "fleet {fleet_elapsed} vs sequential {seq_elapsed}"
    );
}

#[test]
fn fleet_mixed_inference_matches_sequential_field_for_field() {
    // A heterogeneous fleet: policy inference on two cached switches,
    // size on one, headroom on one — still bit-identical per switch.
    let policy_cfg = PolicyProbeConfig::default();
    let mut seq_tb = testbed();
    let seq_size = {
        let mut eng = ProbingEngine::new(&mut seq_tb, Dpid(2), RuleKind::L3);
        probe_sizes(&mut eng, &size_config(Dpid(2))).expect("sequential size probe")
    };
    let seq_pol3 = {
        let mut eng = ProbingEngine::new(&mut seq_tb, Dpid(3), RuleKind::L3);
        probe_policy(&mut eng, 128, &policy_cfg).expect("sequential policy probe")
    };
    let seq_pol4 = {
        let mut eng = ProbingEngine::new(&mut seq_tb, Dpid(4), RuleKind::L3);
        probe_policy(&mut eng, 96, &policy_cfg).expect("sequential policy probe")
    };
    let seq_head = {
        let mut eng = ProbingEngine::new(&mut seq_tb, Dpid(1), RuleKind::L3);
        probe_headroom(&mut eng, 1, 512).expect("sequential headroom probe")
    };

    let mut fleet_tb = testbed();
    let jobs = vec![
        FleetJob::size(Dpid(2), RuleKind::L3, size_config(Dpid(2))),
        FleetJob::policy(Dpid(3), RuleKind::L3, 128, policy_cfg),
        FleetJob::policy(Dpid(4), RuleKind::L3, 96, policy_cfg),
        FleetJob::headroom(Dpid(1), RuleKind::L3, 1, 512),
    ];
    let outcomes = run_inference(&mut fleet_tb, &jobs).expect("fleet mixed inference");

    assert_eq!(outcomes[0].as_size().expect("size outcome"), &seq_size);
    assert_eq!(outcomes[1].as_policy().expect("policy outcome"), &seq_pol3);
    assert_eq!(outcomes[2].as_policy().expect("policy outcome"), &seq_pol4);
    assert_eq!(
        outcomes[3].as_headroom().expect("headroom outcome"),
        &seq_head
    );
}
