//! The resumable drivers are bit-identical to the original synchronous
//! probing loops.
//!
//! The pre-refactor implementations of Algorithm 1 (`probe_sizes`) and
//! Algorithm 2 (`probe_policy`) are transcribed below as plain blocking
//! loops over the public `ProbingEngine` primitives — exactly the code
//! the drivers replaced. Property tests then run both paths on
//! identically-seeded testbeds across randomly drawn cache policies,
//! table sizes, and seeds, and require the complete result structures
//! (every float included) to be `==`, not merely close.

use ofwire::flow_mod::FlowMod;
use ofwire::types::Dpid;
use proptest::prelude::*;
use simnet::rng::DetRng;
use switchsim::cache::{Attribute, CachePolicy, Direction, SortKey};
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::cluster::{cluster_rtts, kmeans_auto};
use tango::infer_policy::{
    initialization_plan, probe_policy, FlowInit, InferredPolicy, PolicyProbeConfig, PolicyRound,
};
use tango::infer_size::{probe_sizes, ClusterMethod, LevelEstimate, SizeEstimate, SizeProbeConfig};
use tango::pattern::RuleKind;
use tango::probe::ProbingEngine;
use tango::stats::{nb_hit_probability, pearson};

/// The pre-driver `probe_sizes`: stage-1 doubling insertion, stage-2
/// shuffled sweep + clustering, stage-3 negative-binomial sampling — as
/// one blocking loop.
fn legacy_probe_sizes(engine: &mut ProbingEngine<'_>, config: &SizeProbeConfig) -> SizeEstimate {
    let mut rng = DetRng::new(config.seed);
    let kind = engine.kind();

    let mut m: usize = 0;
    let mut attempted = 0;
    let mut packets = 0;
    let mut batches = 0;
    let mut hit_rejection = false;
    let mut x: usize = 1;
    while !hit_rejection && m < config.max_flows {
        let target = x.min(config.max_flows);
        if target > m {
            let fms: Vec<FlowMod> = (m..target)
                .map(|i| FlowMod::add(kind.flow_match(i as u32), config.priority))
                .collect();
            attempted += fms.len();
            batches += 1;
            let (ok, failed, _elapsed) = engine.run_batch(fms);
            for i in m..m + ok {
                engine.probe_one(i as u32);
                packets += 1;
            }
            m += ok;
            if failed > 0 {
                hit_rejection = true;
                break;
            }
        }
        x *= 2;
    }

    let mut order: Vec<u32> = (0..m as u32).collect();
    rng.shuffle(&mut order);
    let mut rtts = Vec::with_capacity(m);
    for id in order {
        let s = engine.probe_one(id);
        packets += 1;
        rtts.push(s.rtt_ms);
    }
    let clustering = match config.cluster_method {
        ClusterMethod::Gaps => cluster_rtts(&rtts),
        ClusterMethod::KMeans => kmeans_auto(&rtts, 4),
    };

    let mut levels = Vec::new();
    for level in 0..clustering.k() {
        let mut runs: Vec<u64> = Vec::with_capacity(config.trials_per_level);
        let mut saturated = false;
        for _ in 0..config.trials_per_level {
            let mut j: u64 = 0;
            loop {
                let id = rng.range_u64(0, m as u64) as u32;
                let s = engine.probe_one(id);
                packets += 1;
                if clustering.within(s.rtt_ms, level) && (j as usize) < m {
                    j += 1;
                } else {
                    break;
                }
            }
            if j as usize >= m {
                saturated = true;
                break;
            }
            runs.push(j);
        }
        let estimated_size = if saturated {
            m as f64
        } else {
            m as f64 * nb_hit_probability(&runs)
        };
        levels.push(LevelEstimate {
            rtt_ms: clustering.centers[level],
            estimated_size,
            swept_count: clustering.sizes[level],
            saturated,
        });
    }

    SizeEstimate {
        m,
        hit_rejection,
        levels,
        clustering,
        rules_attempted: attempted,
        packets_sent: packets,
        batches,
    }
}

/// The pre-driver `probe_policy` round: initialize, stimulate, measure
/// most-recently-used-first, classify membership, correlate.
fn legacy_run_round(
    engine: &mut ProbingEngine<'_>,
    cache_size: usize,
    hold_priority: bool,
    hold_traffic: bool,
    config: &PolicyProbeConfig,
) -> PolicyRound {
    let s = 2 * cache_size;
    let plan = initialization_plan(s, hold_priority, hold_traffic, config);

    engine.clear_rules();
    for f in &plan {
        engine.install_one(f.id, f.priority);
    }
    for f in &plan {
        for _ in 1..f.traffic {
            engine.probe_one(f.id);
        }
    }
    let mut by_use: Vec<&FlowInit> = plan.iter().collect();
    by_use.sort_by_key(|f| f.use_rank);
    for f in &by_use {
        engine.probe_one(f.id);
    }

    let mut rtts: Vec<(u32, f64)> = Vec::with_capacity(s);
    for f in by_use.iter().rev() {
        let sample = engine.probe_one(f.id);
        rtts.push((f.id, sample.rtt_ms));
    }

    let values: Vec<f64> = rtts.iter().map(|&(_, r)| r).collect();
    let clustering = cluster_rtts(&values);
    let mut cached = vec![0.0f64; s];
    let mut cached_count = 0;
    for &(id, rtt) in &rtts {
        if clustering.k() >= 2 && clustering.within(rtt, 0) {
            cached[id as usize] = 1.0;
            cached_count += 1;
        }
    }
    if clustering.k() < 2 {
        return PolicyRound {
            correlations: vec![],
            chosen: None,
            cached_count: if clustering.k() == 1 { s } else { 0 },
        };
    }

    let mut correlations = Vec::new();
    let mut best: Option<(Attribute, f64)> = None;
    for attr in Attribute::ALL {
        let skip = match attr {
            Attribute::Priority => hold_priority,
            Attribute::TrafficCount => hold_traffic,
            _ => false,
        };
        if skip {
            continue;
        }
        let xs: Vec<f64> = plan
            .iter()
            .map(|f| match attr {
                Attribute::InsertionTime => f64::from(f.id),
                Attribute::UseTime => f64::from(f.use_rank),
                Attribute::TrafficCount => f64::from(f.traffic),
                Attribute::Priority => f64::from(f.priority),
            })
            .collect();
        if let Some(r) = pearson(&xs, &cached) {
            correlations.push((attr, r));
            if best.is_none_or(|(_, br)| r.abs() > br.abs()) {
                best = Some((attr, r));
            }
        }
    }

    let chosen = best.and_then(|(attr, r)| {
        if r.abs() >= config.min_correlation {
            Some(SortKey {
                attribute: attr,
                direction: if r > 0.0 {
                    Direction::KeepHigh
                } else {
                    Direction::KeepLow
                },
            })
        } else {
            None
        }
    });

    PolicyRound {
        correlations,
        chosen,
        cached_count,
    }
}

/// The pre-driver `probe_policy` outer loop.
fn legacy_probe_policy(
    engine: &mut ProbingEngine<'_>,
    cache_size: usize,
    config: &PolicyProbeConfig,
) -> InferredPolicy {
    let mut identified: Vec<SortKey> = Vec::new();
    let mut rounds = Vec::new();

    while identified.len() < config.max_keys {
        let hold_priority = identified
            .iter()
            .any(|k| k.attribute == Attribute::Priority);
        let hold_traffic = identified
            .iter()
            .any(|k| k.attribute == Attribute::TrafficCount);
        let round = legacy_run_round(engine, cache_size, hold_priority, hold_traffic, config);
        let chosen = round.chosen;
        rounds.push(round);
        match chosen {
            None => break,
            Some(key) => {
                if identified.iter().any(|k| k.attribute == key.attribute) {
                    break;
                }
                let attr = key.attribute;
                identified.push(key);
                if attr.is_serial() || attr == Attribute::TrafficCount {
                    break;
                }
            }
        }
    }

    InferredPolicy {
        keys: identified,
        rounds,
    }
}

fn arb_policy() -> impl Strategy<Value = CachePolicy> {
    prop_oneof![
        Just(CachePolicy::fifo()),
        Just(CachePolicy::lru()),
        Just(CachePolicy::lfu()),
        Just(CachePolicy::priority()),
        Just(CachePolicy::priority_then_lru()),
        Just(CachePolicy::lfu_then_fifo()),
    ]
}

fn testbed_with(seed: u64, tcam: u64, policy: CachePolicy) -> Testbed {
    let mut tb = Testbed::new(seed);
    tb.attach_default(Dpid(1), SwitchProfile::generic_cached(tcam, policy));
    tb
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn size_driver_is_bit_identical_to_legacy_loop(
        policy in arb_policy(),
        tcam in 40u64..120,
        seed in any::<u64>(),
        method in prop_oneof![Just(ClusterMethod::Gaps), Just(ClusterMethod::KMeans)],
    ) {
        let cfg = SizeProbeConfig {
            max_flows: (tcam * 2) as usize,
            trials_per_level: 48,
            seed,
            cluster_method: method,
            ..SizeProbeConfig::default()
        };
        let legacy = {
            let mut tb = testbed_with(seed, tcam, policy.clone());
            let mut eng = ProbingEngine::new(&mut tb, Dpid(1), RuleKind::L3);
            legacy_probe_sizes(&mut eng, &cfg)
        };
        let driver = {
            let mut tb = testbed_with(seed, tcam, policy);
            let mut eng = ProbingEngine::new(&mut tb, Dpid(1), RuleKind::L3);
            probe_sizes(&mut eng, &cfg).expect("driver-based probe completes")
        };
        prop_assert_eq!(legacy, driver);
    }

    #[test]
    fn policy_driver_is_bit_identical_to_legacy_loop(
        policy in arb_policy(),
        cache in 30usize..80,
        seed in any::<u64>(),
    ) {
        let cfg = PolicyProbeConfig::default();
        let legacy = {
            let mut tb = testbed_with(seed, cache as u64, policy.clone());
            let mut eng = ProbingEngine::new(&mut tb, Dpid(1), RuleKind::L3);
            legacy_probe_policy(&mut eng, cache, &cfg)
        };
        let driver = {
            let mut tb = testbed_with(seed, cache as u64, policy);
            let mut eng = ProbingEngine::new(&mut tb, Dpid(1), RuleKind::L3);
            probe_policy(&mut eng, cache, &cfg).expect("driver-based probe completes")
        };
        prop_assert_eq!(legacy, driver);
    }
}
