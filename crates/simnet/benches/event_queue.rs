//! Criterion benches for the calendar event queue against the legacy
//! `BinaryHeap` oracle, at 1k / 64k / 1M live events: steady-state
//! hold (pop one, push one — the DES inner loop) and drain.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simnet::event::{legacy, EventQueue};
use simnet::time::SimTime;

/// A deterministic, roughly exponential-ish spread of timestamps: the
/// hold pattern reschedules each popped event a pseudo-random stride
/// ahead, as a simulation's completion events would.
fn stride(i: u64) -> u64 {
    1 + (i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 48)
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.sample_size(10);
    for n in [1_000u64, 64_000, 1_000_000] {
        g.bench_function(format!("calendar_hold_{n}"), |b| {
            let mut q = EventQueue::new();
            for i in 0..n {
                q.push(SimTime(stride(i) * 1000), i);
            }
            b.iter(|| {
                for _ in 0..1000 {
                    let (at, i) = q.pop().expect("queue held at n");
                    q.push(SimTime(at.0 + stride(i) * 1000), i);
                }
                black_box(q.len())
            });
        });
        g.bench_function(format!("heap_hold_{n}"), |b| {
            let mut q = legacy::EventQueue::new();
            for i in 0..n {
                q.push(SimTime(stride(i) * 1000), i);
            }
            b.iter(|| {
                for _ in 0..1000 {
                    let (at, i) = q.pop().expect("queue held at n");
                    q.push(SimTime(at.0 + stride(i) * 1000), i);
                }
                black_box(q.len())
            });
        });
        g.bench_function(format!("calendar_drain_{n}"), |b| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    q.push(SimTime(stride(i) * 1000), i);
                }
                let mut count = 0u64;
                while q.pop().is_some() {
                    count += 1;
                }
                black_box(count)
            });
        });
        g.bench_function(format!("heap_drain_{n}"), |b| {
            b.iter(|| {
                let mut q = legacy::EventQueue::new();
                for i in 0..n {
                    q.push(SimTime(stride(i) * 1000), i);
                }
                let mut count = 0u64;
                while q.pop().is_some() {
                    count += 1;
                }
                black_box(count)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
