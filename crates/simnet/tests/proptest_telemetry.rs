//! Property test: the span recorder upholds its balance and nesting
//! invariants under random begin/end/cancel programs.
//!
//! The driver mirrors how real producers use [`Telemetry`]: a monotone
//! virtual clock, a handful of tracks, and per-track LIFO close order
//! (the recorder panics on anything else — pinned by a unit test; the
//! property here is that *legal* programs always yield balanced,
//! properly nested, time-monotone spans, with `close_all` sweeping up
//! whatever the program left open).

use proptest::prelude::*;
use simnet::telemetry::{SpanId, Telemetry};
use simnet::time::SimTime;

#[derive(Debug, Clone)]
enum Op {
    /// Open a span on `track % TRACKS` after advancing the clock.
    Begin { track: u8, dt: u16 },
    /// Close the innermost span of `track % TRACKS`, if any is open.
    End { track: u8, dt: u16 },
    /// Cancel the innermost span of `track % TRACKS`, if any is open.
    Cancel { track: u8 },
}

const TRACKS: u32 = 4;
const NAMES: [&str; 3] = ["alpha", "beta", "gamma"];

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u16>()).prop_map(|(track, dt)| Op::Begin { track, dt }),
        (any::<u8>(), any::<u16>()).prop_map(|(track, dt)| Op::Begin { track, dt }),
        (any::<u8>(), any::<u16>()).prop_map(|(track, dt)| Op::End { track, dt }),
        (any::<u8>(), any::<u16>()).prop_map(|(track, dt)| Op::End { track, dt }),
        any::<u8>().prop_map(|track| Op::Cancel { track }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_programs_yield_balanced_nested_monotone_spans(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let mut tel = Telemetry::recording();
        let mut clock = SimTime(0);
        // Model stacks: the ids this program knows are open, per track.
        let mut open: Vec<Vec<SpanId>> = (0..TRACKS).map(|_| Vec::new()).collect();
        let mut begun = 0u64;
        let mut cancelled = 0u64;
        for op in ops {
            match op {
                Op::Begin { track, dt } => {
                    clock += simnet::time::SimDuration(u64::from(dt));
                    let track = u32::from(track) % TRACKS;
                    let name = NAMES[(begun % NAMES.len() as u64) as usize];
                    let id = tel.span_begin(track, name, clock);
                    prop_assert!(id.is_some(), "recording handle returns ids");
                    open[track as usize].push(id.unwrap());
                    begun += 1;
                }
                Op::End { track, dt } => {
                    clock += simnet::time::SimDuration(u64::from(dt));
                    let track = u32::from(track) % TRACKS;
                    if let Some(id) = open[track as usize].pop() {
                        tel.span_end(Some(id), clock);
                    }
                }
                Op::Cancel { track } => {
                    let track = u32::from(track) % TRACKS;
                    if let Some(id) = open[track as usize].pop() {
                        tel.span_cancel(Some(id));
                        cancelled += 1;
                    }
                }
            }
        }
        let rec = tel.recorder_mut().expect("recording");
        let left_open: u64 = open.iter().map(|s| s.len() as u64).sum();
        prop_assert_eq!(rec.open_spans() as u64, left_open);
        rec.close_all(clock);

        // Balance: everything begun was recorded or cancelled, nothing
        // stays open, nothing was dropped at these sizes.
        prop_assert_eq!(rec.open_spans(), 0);
        prop_assert_eq!(rec.spans_dropped(), 0);
        prop_assert_eq!(rec.spans().count() as u64 + cancelled, begun);

        // Monotone: every span's end is at or after its start, and
        // within a track, begin order (seq) is start-time order.
        for s in rec.spans() {
            prop_assert!(s.end >= s.start, "span {s:?} ends before it starts");
            prop_assert!(s.track < TRACKS);
        }
        for track in 0..TRACKS {
            let mut by_seq: Vec<_> = rec.spans().filter(|s| s.track == track).collect();
            by_seq.sort_by_key(|s| s.seq);
            for w in by_seq.windows(2) {
                prop_assert!(w[0].start <= w[1].start,
                    "later begin {:?} starts before earlier {:?}", w[1], w[0]);
            }
            // Nesting: two spans on one track are nested or disjoint —
            // never partially overlapping (the LIFO discipline's
            // guarantee, and what Chrome's viewer infers nesting from).
            for (i, a) in by_seq.iter().enumerate() {
                for b in by_seq.iter().skip(i + 1) {
                    let nested = (a.start <= b.start && b.end <= a.end)
                        || (b.start <= a.start && a.end <= b.end);
                    let disjoint = a.end <= b.start || b.end <= a.start;
                    prop_assert!(nested || disjoint,
                        "partial overlap on track {track}: {a:?} vs {b:?}");
                }
            }
        }
    }
}
