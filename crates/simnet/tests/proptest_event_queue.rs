//! Property test: the calendar event queue agrees with the legacy
//! `BinaryHeap` queue on random interleavings of push/pop/cancel.
//!
//! Timestamps are drawn from a deliberately tie-heavy, mixed-scale
//! distribution (dense clusters, far-future outliers that must route
//! through the overflow tier, and exact duplicates that exercise the
//! seq FIFO tie-break), because those are exactly the regimes where a
//! bucketed structure could diverge from a comparison heap. Keys are
//! tracked per-implementation by push order — the two queues are free
//! to mint different slot/generation bit patterns — and cancels target
//! fresh, already-delivered, and already-cancelled keys alike, pinning
//! the stale-key rejection contract.

use proptest::prelude::*;
use simnet::event::{legacy, EventQueue};
use simnet::time::SimTime;

#[derive(Debug, Clone)]
enum Op {
    /// Push at a timestamp picked from the tie-heavy pool.
    Push { at_pick: u8 },
    /// Pop one event; both queues must yield the same (time, payload).
    Pop,
    /// Cancel the key minted by the `which`-th push (mod pushes so
    /// far) — may be live, delivered, or already cancelled; both
    /// queues must report the same result.
    Cancel { which: u16 },
    /// Compare peeked front timestamps.
    Peek,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Pushes dominate (repeated arms stand in for weights — the
    // vendored proptest shim's `prop_oneof!` is unweighted).
    prop_oneof![
        any::<u8>().prop_map(|at_pick| Op::Push { at_pick }),
        any::<u8>().prop_map(|at_pick| Op::Push { at_pick }),
        any::<u8>().prop_map(|at_pick| Op::Push { at_pick }),
        Just(Op::Pop),
        Just(Op::Pop),
        any::<u16>().prop_map(|which| Op::Cancel { which }),
        any::<u16>().prop_map(|which| Op::Cancel { which }),
        Just(Op::Peek),
    ]
}

/// Maps a byte to a timestamp: mostly a tiny dense cluster (heavy
/// exact ties), some medium spread, a few far-future outliers beyond
/// any initial calendar window.
fn at_for(pick: u8, salt: u64) -> SimTime {
    match pick % 8 {
        0..=3 => SimTime(u64::from(pick % 4) * 1_000),
        4 | 5 => SimTime(u64::from(pick) * 7_919 + salt % 13),
        6 => SimTime(u64::from(pick) * 1_000_000),
        _ => SimTime(3_600_000_000_000 + u64::from(pick) * 1_000_000_000),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn calendar_queue_matches_binary_heap_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..400),
    ) {
        let mut cal: EventQueue<u64> = EventQueue::new();
        let mut heap: legacy::EventQueue<u64> = legacy::EventQueue::new();
        // Push-order key ledgers, one per implementation: key bit
        // patterns may differ, behaviour must not.
        let mut cal_keys = Vec::new();
        let mut heap_keys = Vec::new();
        let mut payload = 0u64;

        for (i, op) in ops.into_iter().enumerate() {
            match op {
                Op::Push { at_pick } => {
                    let at = at_for(at_pick, i as u64);
                    cal_keys.push(cal.push(at, payload));
                    heap_keys.push(heap.push(at, payload));
                    payload += 1;
                }
                Op::Pop => {
                    prop_assert_eq!(cal.pop(), heap.pop(), "pop diverged at op {}", i);
                }
                Op::Cancel { which } => {
                    if !cal_keys.is_empty() {
                        let k = usize::from(which) % cal_keys.len();
                        prop_assert_eq!(
                            cal.cancel(cal_keys[k]),
                            heap.cancel(heap_keys[k]),
                            "cancel diverged at op {}", i
                        );
                    }
                }
                Op::Peek => {
                    prop_assert_eq!(cal.peek_time(), heap.peek_time(), "peek diverged at op {}", i);
                }
            }
            prop_assert_eq!(cal.len(), heap.len(), "len diverged at op {}", i);
            prop_assert_eq!(cal.is_empty(), heap.is_empty());
        }

        // Drain both to exhaustion: full pop sequences must be
        // identical, and stale keys must stay dead in both.
        loop {
            let (a, b) = (cal.pop_keyed(), heap.pop_keyed());
            match (a, b) {
                (None, None) => break,
                (Some((at_a, _, e_a)), Some((at_b, _, e_b))) => {
                    prop_assert_eq!((at_a, e_a), (at_b, e_b), "drain diverged");
                }
                (a, b) => prop_assert!(false, "drain length diverged: {:?} vs {:?}",
                    a.map(|(t, _, e)| (t, e)), b.map(|(t, _, e)| (t, e))),
            }
        }
        for (ka, kb) in cal_keys.into_iter().zip(heap_keys) {
            prop_assert!(!cal.cancel(ka), "delivered key cancellable in calendar queue");
            prop_assert!(!heap.cancel(kb), "delivered key cancellable in heap queue");
        }
    }
}
