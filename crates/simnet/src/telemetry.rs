//! Virtual-time telemetry: spans, counters/gauges/histograms, and
//! exporters (Chrome trace-event JSON for Perfetto, plain text).
//!
//! Everything above the simulator — the testbed's control-path dispatch,
//! the inference drivers, the fleet runner, the scheduler executor —
//! reports *what happened when* through this module, stamped in
//! [`SimTime`] rather than host time, so a trace is a pure function of
//! the experiment seed: byte-identical across runs, thread counts, and
//! machines.
//!
//! # The off switch
//!
//! Producers hold a [`Telemetry`] handle: a niche-packed
//! `Option<Box<Recorder>>` (one machine word — `None` is the null
//! pointer). Every recording method starts with one branch on that
//! option and returns immediately when disabled, so a telemetry-off run
//! does no allocation and no bookkeeping — the invariant the perf gate
//! for the fig11/fig12/infer_size trio relies on.
//!
//! # Spans
//!
//! A span is a named `[begin, end]` interval on a *track* (one track per
//! switch plus [`TRACK_CONTROLLER`] and [`TRACK_SCHEDULER`]). Spans on
//! one track must nest: `span_end`/`span_cancel` operate strictly on the
//! innermost open span of their track (LIFO), which is exactly the
//! discipline Chrome's trace viewer uses to infer nesting from `"X"`
//! events on one thread. Completed spans land in a bounded ring — the
//! oldest spans fall off first (counted in `spans_dropped`), so a
//! runaway experiment degrades coverage instead of memory.
//!
//! # Metrics
//!
//! Counters (monotone sums), gauges (max observed), and histograms (raw
//! samples, summarized with [`Summary`] including `p50/p90/p99`) live in
//! registries keyed by `&'static str`. Keys iterate in sorted order, so
//! every exporter is deterministic.

use crate::time::SimTime;
use crate::trace::Summary;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// Export track carrying controller-side activity (fleet jobs, sync
/// adapters).
pub const TRACK_CONTROLLER: u32 = 0;

/// Export track carrying scheduler/executor dispatch activity.
pub const TRACK_SCHEDULER: u32 = 1;

/// The export track of the switch at dense index `idx` (one Perfetto
/// "thread" per switch, after the controller and scheduler tracks).
#[must_use]
pub fn switch_track(idx: u32) -> u32 {
    2 + idx
}

/// Handle to one open span. Returned by [`Telemetry::span_begin`]; pass
/// it back to [`Telemetry::span_end`] (or `span_cancel`). `None` handles
/// (telemetry off) flow through the same calls as no-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId {
    track: u32,
    seq: u64,
}

/// One completed span, as stored in the ring and exported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRec {
    /// Export track (Perfetto thread) the span belongs to.
    pub track: u32,
    /// Span name (static so recording never allocates).
    pub name: &'static str,
    /// Virtual begin instant.
    pub start: SimTime,
    /// Virtual end instant (`>= start`).
    pub end: SimTime,
    /// Begin order, unique per recorder — the deterministic tiebreak for
    /// simultaneous spans.
    pub seq: u64,
}

/// An in-progress span on some track's LIFO stack.
#[derive(Debug, Clone)]
struct OpenSpan {
    seq: u64,
    name: &'static str,
    start: SimTime,
}

/// Default span-ring capacity (~1M spans ≈ 40 MB); enough for every
/// experiment in the suite at `--quick` and the full fig11/fig12 runs.
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 20;

/// The arena behind a [`Telemetry`] handle: span ring, open-span stacks,
/// and the metric registries.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    spans: VecDeque<SpanRec>,
    capacity: usize,
    /// Spans evicted from the ring because it was full.
    dropped: u64,
    /// Per-track stacks of open spans, indexed by track id.
    open: Vec<Vec<OpenSpan>>,
    next_seq: u64,
    /// Human-readable track labels for export (`thread_name` metadata).
    track_names: BTreeMap<u32, String>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Vec<f64>>,
}

impl Recorder {
    /// An empty recorder with the default span capacity.
    #[must_use]
    pub fn new() -> Recorder {
        Recorder::with_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// An empty recorder whose span ring holds at most `capacity` spans.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Recorder {
        Recorder {
            capacity: capacity.max(1),
            ..Recorder::default()
        }
    }

    fn stack(&mut self, track: u32) -> &mut Vec<OpenSpan> {
        let idx = track as usize;
        if self.open.len() <= idx {
            self.open.resize_with(idx + 1, Vec::new);
        }
        &mut self.open[idx]
    }

    fn begin(&mut self, track: u32, name: &'static str, at: SimTime) -> SpanId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stack(track).push(OpenSpan {
            seq,
            name,
            start: at,
        });
        SpanId { track, seq }
    }

    fn end(&mut self, id: SpanId, at: SimTime) {
        let top = self
            .stack(id.track)
            .pop()
            .expect("span_end on a track with no open span");
        assert_eq!(
            top.seq, id.seq,
            "span_end out of order: spans on one track must close LIFO"
        );
        assert!(at >= top.start, "span cannot end before it begins");
        self.record(SpanRec {
            track: id.track,
            name: top.name,
            start: top.start,
            end: at,
            seq: top.seq,
        });
    }

    fn cancel(&mut self, id: SpanId) {
        let top = self
            .stack(id.track)
            .pop()
            .expect("span_cancel on a track with no open span");
        assert_eq!(
            top.seq, id.seq,
            "span_cancel out of order: spans on one track must close LIFO"
        );
    }

    fn record(&mut self, rec: SpanRec) {
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(rec);
    }

    /// Ends every still-open span at `at` (innermost first, so the LIFO
    /// discipline holds). Called before export so aborted runs still
    /// produce balanced traces.
    pub fn close_all(&mut self, at: SimTime) {
        for track in 0..self.open.len() {
            while let Some(top) = self.open[track].pop() {
                let at = at.max(top.start);
                self.record(SpanRec {
                    track: u32::try_from(track).expect("track fits u32"),
                    name: top.name,
                    start: top.start,
                    end: at,
                    seq: top.seq,
                });
            }
        }
    }

    /// Completed spans in ring order.
    pub fn spans(&self) -> impl Iterator<Item = &SpanRec> {
        self.spans.iter()
    }

    /// Spans still open (unbalanced begin/end), across all tracks.
    #[must_use]
    pub fn open_spans(&self) -> usize {
        self.open.iter().map(Vec::len).sum()
    }

    /// Spans evicted because the ring was full.
    #[must_use]
    pub fn spans_dropped(&self) -> u64 {
        self.dropped
    }

    /// Labels `track` for export (Perfetto `thread_name` metadata).
    pub fn name_track(&mut self, track: u32, name: impl Into<String>) {
        self.track_names.insert(track, name.into());
    }

    /// Current value of counter `key` (0 if never incremented).
    #[must_use]
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Summarizes the metric registries (histograms collapse to
    /// [`Summary`], including the tail quantiles).
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        Recorder::merge_metrics([self])
    }

    /// Merges many recorders' registries into one snapshot: counters
    /// sum, gauges max, histogram samples concatenate (in iteration
    /// order, so input-index-ordered cells merge deterministically).
    pub fn merge_metrics<'a>(recs: impl IntoIterator<Item = &'a Recorder>) -> MetricsSnapshot {
        let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut samples: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
        let mut dropped = 0;
        for r in recs {
            for (&k, &v) in &r.counters {
                *counters.entry(k).or_insert(0) += v;
            }
            for (&k, &v) in &r.gauges {
                let g = gauges.entry(k).or_insert(0);
                *g = (*g).max(v);
            }
            for (&k, v) in &r.hists {
                samples.entry(k).or_default().extend_from_slice(v);
            }
            dropped += r.dropped;
        }
        if dropped > 0 {
            *counters.entry("telemetry/spans_dropped").or_insert(0) += dropped;
        }
        MetricsSnapshot {
            counters: counters
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            gauges: gauges
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            hists: samples
                .into_iter()
                .map(|(k, v)| (k.to_string(), Summary::of(v)))
                .collect(),
        }
    }
}

/// A deterministic summary of the metric registries: sorted key order,
/// counters summed, gauges maxed, histograms collapsed to [`Summary`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotone event counts, by key.
    pub counters: Vec<(String, u64)>,
    /// Maximum observed values, by key.
    pub gauges: Vec<(String, u64)>,
    /// Sample distributions, by key.
    pub hists: Vec<(String, Summary)>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as an aligned plain-text report — the
    /// metrics twin of the Chrome trace, written beside `results/`.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# telemetry metrics");
        if !self.counters.is_empty() {
            let _ = writeln!(out, "\n[counters]");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "{k} = {v}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "\n[gauges (max observed)]");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "{k} = {v}");
            }
        }
        if !self.hists.is_empty() {
            let _ = writeln!(out, "\n[histograms]");
            for (k, s) in &self.hists {
                let _ = writeln!(
                    out,
                    "{k}: n={} mean={:.4} p50={:.4} p90={:.4} p99={:.4} max={:.4}",
                    s.n, s.mean, s.p50, s.p90, s.p99, s.max
                );
            }
        }
        out
    }
}

/// The producer-side handle: a niche-packed `Option<Box<Recorder>>`.
///
/// Disabled (`Telemetry::off`, the default) it is a null pointer and
/// every method is one branch; enabled it owns the recorder. The handle
/// is `Clone` so a `Testbed` carrying one stays `Clone`.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    rec: Option<Box<Recorder>>,
}

impl Telemetry {
    /// The disabled handle (all methods no-ops).
    #[must_use]
    pub fn off() -> Telemetry {
        Telemetry { rec: None }
    }

    /// A handle recording into a fresh default-capacity [`Recorder`].
    #[must_use]
    pub fn recording() -> Telemetry {
        Telemetry {
            rec: Some(Box::new(Recorder::new())),
        }
    }

    /// Whether a recorder is attached.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.rec.is_some()
    }

    /// Opens a span; returns `None` when disabled.
    #[inline]
    pub fn span_begin(&mut self, track: u32, name: &'static str, at: SimTime) -> Option<SpanId> {
        self.rec.as_mut().map(|r| r.begin(track, name, at))
    }

    /// Closes the innermost open span of `id`'s track. A `None` id (from
    /// a disabled begin) is a no-op.
    #[inline]
    pub fn span_end(&mut self, id: Option<SpanId>, at: SimTime) {
        if let (Some(r), Some(id)) = (self.rec.as_mut(), id) {
            r.end(id, at);
        }
    }

    /// Discards the innermost open span of `id`'s track without
    /// recording it.
    #[inline]
    pub fn span_cancel(&mut self, id: Option<SpanId>) {
        if let (Some(r), Some(id)) = (self.rec.as_mut(), id) {
            r.cancel(id);
        }
    }

    /// Adds `n` to counter `key`.
    #[inline]
    pub fn count(&mut self, key: &'static str, n: u64) {
        if let Some(r) = self.rec.as_mut() {
            *r.counters.entry(key).or_insert(0) += n;
        }
    }

    /// Raises gauge `key` to at least `v` (gauges export their maximum).
    #[inline]
    pub fn gauge_max(&mut self, key: &'static str, v: u64) {
        if let Some(r) = self.rec.as_mut() {
            let g = r.gauges.entry(key).or_insert(0);
            *g = (*g).max(v);
        }
    }

    /// Records one histogram sample for `key`.
    #[inline]
    pub fn observe(&mut self, key: &'static str, v: f64) {
        if let Some(r) = self.rec.as_mut() {
            r.hists.entry(key).or_default().push(v);
        }
    }

    /// The attached recorder, if enabled.
    #[must_use]
    pub fn recorder(&self) -> Option<&Recorder> {
        self.rec.as_deref()
    }

    /// Mutable access to the attached recorder, if enabled.
    pub fn recorder_mut(&mut self) -> Option<&mut Recorder> {
        self.rec.as_deref_mut()
    }

    /// Detaches and returns the recorder, leaving the handle disabled.
    pub fn take(&mut self) -> Option<Box<Recorder>> {
        self.rec.take()
    }
}

/// Builder for a Chrome trace-event JSON file (the format Perfetto and
/// `chrome://tracing` load).
///
/// Each added cell becomes one *process* (`pid`), its tracks the
/// process's *threads* (`tid`) — so a multi-cell experiment opens in
/// Perfetto as one process group per cell with per-switch, controller,
/// and scheduler tracks. Virtual nanoseconds map to trace microseconds
/// (`ts`/`dur` carry three decimals, exact to the nanosecond), and all
/// ordering is deterministic: cells in insertion order, spans sorted by
/// `(track, start, seq)` — so the rendered bytes are a pure function of
/// the recorders.
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
    next_pid: u32,
}

/// Formats virtual nanoseconds as trace microseconds with nanosecond
/// precision, deterministically (integer arithmetic, no float
/// formatting).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Minimal JSON string escaping for labels this crate controls.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl ChromeTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    /// Adds one recorder as a new process named `label`; returns the
    /// assigned pid.
    pub fn add_cell(&mut self, label: &str, rec: &Recorder) -> u32 {
        self.next_pid += 1;
        let pid = self.next_pid;
        self.events.push(format!(
            r#"{{"name":"process_name","ph":"M","pid":{pid},"tid":0,"args":{{"name":"{}"}}}}"#,
            esc(label)
        ));
        let mut spans: Vec<&SpanRec> = rec.spans.iter().collect();
        spans.sort_by_key(|s| (s.track, s.start, s.seq));
        let mut named: Vec<u32> = rec.track_names.keys().copied().collect();
        for s in &spans {
            if !rec.track_names.contains_key(&s.track) && !named.contains(&s.track) {
                named.push(s.track);
            }
        }
        named.sort_unstable();
        for track in named {
            let name = rec
                .track_names
                .get(&track)
                .cloned()
                .unwrap_or_else(|| match track {
                    TRACK_CONTROLLER => "controller".to_string(),
                    TRACK_SCHEDULER => "scheduler".to_string(),
                    t => format!("track {t}"),
                });
            self.events.push(format!(
                r#"{{"name":"thread_name","ph":"M","pid":{pid},"tid":{track},"args":{{"name":"{}"}}}}"#,
                esc(&name)
            ));
            // Sort index pins Perfetto's track order to the track id.
            self.events.push(format!(
                r#"{{"name":"thread_sort_index","ph":"M","pid":{pid},"tid":{track},"args":{{"sort_index":{track}}}}}"#,
            ));
        }
        for s in spans {
            let dur = s.end.since(s.start).0;
            self.events.push(format!(
                r#"{{"name":"{}","ph":"X","ts":{},"dur":{},"pid":{pid},"tid":{}}}"#,
                esc(s.name),
                us(s.start.0),
                us(dur),
                s.track
            ));
        }
        pid
    }

    /// Renders the trace as Chrome trace-event JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(e);
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    #[test]
    fn disabled_handle_is_inert() {
        let mut tel = Telemetry::off();
        assert!(!tel.is_enabled());
        let id = tel.span_begin(TRACK_CONTROLLER, "noop", t(1));
        assert!(id.is_none());
        tel.span_end(id, t(2));
        tel.count("x", 1);
        tel.observe("y", 1.0);
        assert!(tel.take().is_none());
    }

    #[test]
    fn spans_nest_per_track() {
        let mut tel = Telemetry::recording();
        let outer = tel.span_begin(switch_track(0), "outer", t(0));
        let inner = tel.span_begin(switch_track(0), "inner", t(1));
        // A span on another track interleaves freely.
        let other = tel.span_begin(switch_track(1), "other", t(1));
        tel.span_end(inner, t(2));
        tel.span_end(other, t(3));
        tel.span_end(outer, t(4));
        let rec = tel.take().unwrap();
        assert_eq!(rec.spans().count(), 3);
        assert_eq!(rec.open_spans(), 0);
        let outer = rec.spans().find(|s| s.name == "outer").unwrap();
        let inner = rec.spans().find(|s| s.name == "inner").unwrap();
        assert!(outer.start <= inner.start && inner.end <= outer.end);
    }

    #[test]
    #[should_panic(expected = "LIFO")]
    fn out_of_order_end_panics() {
        let mut tel = Telemetry::recording();
        let a = tel.span_begin(0, "a", t(0));
        let _b = tel.span_begin(0, "b", t(1));
        tel.span_end(a, t(2));
    }

    #[test]
    fn cancel_discards_without_recording() {
        let mut tel = Telemetry::recording();
        let a = tel.span_begin(0, "a", t(0));
        tel.span_cancel(a);
        let rec = tel.take().unwrap();
        assert_eq!(rec.spans().count(), 0);
        assert_eq!(rec.open_spans(), 0);
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let mut rec = Recorder::with_capacity(2);
        for i in 0..4u64 {
            let id = rec.begin(0, "s", SimTime(i));
            rec.end(id, SimTime(i));
        }
        assert_eq!(rec.spans().count(), 2);
        assert_eq!(rec.spans_dropped(), 2);
        assert_eq!(rec.spans().next().unwrap().start, SimTime(2));
        let m = rec.metrics();
        assert!(m
            .counters
            .iter()
            .any(|(k, v)| k == "telemetry/spans_dropped" && *v == 2));
    }

    #[test]
    fn close_all_balances_open_spans() {
        let mut tel = Telemetry::recording();
        tel.span_begin(0, "a", t(1));
        tel.span_begin(0, "b", t(2));
        tel.span_begin(3, "c", t(3));
        let rec = tel.recorder_mut().unwrap();
        rec.close_all(t(5));
        assert_eq!(rec.open_spans(), 0);
        assert_eq!(rec.spans().count(), 3);
        assert!(rec.spans().all(|s| s.end == t(5)));
    }

    #[test]
    fn metrics_merge_sums_and_maxes() {
        let mut a = Telemetry::recording();
        a.count("ops", 3);
        a.gauge_max("depth", 5);
        a.observe("lat", 1.0);
        let mut b = Telemetry::recording();
        b.count("ops", 4);
        b.gauge_max("depth", 2);
        b.observe("lat", 3.0);
        let (ra, rb) = (a.take().unwrap(), b.take().unwrap());
        let m = Recorder::merge_metrics([ra.as_ref(), rb.as_ref()]);
        assert_eq!(m.counters, vec![("ops".to_string(), 7)]);
        assert_eq!(m.gauges, vec![("depth".to_string(), 5)]);
        assert_eq!(m.hists.len(), 1);
        assert_eq!(m.hists[0].1.n, 2);
        assert_eq!(m.hists[0].1.mean, 2.0);
        let text = m.render_text();
        assert!(text.contains("ops = 7"));
        assert!(text.contains("p99"));
    }

    #[test]
    fn chrome_trace_is_deterministic_and_shaped() {
        let build = || {
            let mut tel = Telemetry::recording();
            let a = tel.span_begin(switch_track(0), "flow_mod", t(1));
            tel.span_end(a, t(2));
            let b = tel.span_begin(TRACK_CONTROLLER, "fleet", t(0));
            tel.span_end(b, t(9));
            let mut rec = tel.take().unwrap();
            rec.name_track(switch_track(0), "switch 0 (dpid 1)");
            let mut ct = ChromeTrace::new();
            ct.add_cell("cell", &rec);
            ct.render()
        };
        let one = build();
        assert_eq!(one, build(), "rendering must be deterministic");
        assert!(one.contains("\"ph\":\"X\""));
        assert!(one.contains("\"name\":\"flow_mod\""));
        assert!(one.contains("switch 0 (dpid 1)"));
        assert!(one.contains("\"ts\":1000.000"));
        // Virtual ns map to trace µs: a 1 ms span is 1000 µs.
        assert!(one.contains("\"dur\":1000.000"));
        let _ = SimDuration::ZERO;
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }
}
