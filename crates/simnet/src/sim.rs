//! The simulator: a virtual clock plus an event queue.
//!
//! `Simulator` supports two styles, and the Tango reproduction uses both:
//!
//! * **closed-loop** — sequential code (e.g. the probing engine) calls
//!   [`Simulator::advance`] to charge virtual time for each operation it
//!   performs, reading timestamps with [`Simulator::now`];
//! * **event-driven** — concurrent machinery (e.g. the network-wide
//!   scheduler executor) schedules completion events and consumes them
//!   with [`Simulator::next_event`], which warps the clock forward.

use crate::event::{EventKey, EventQueue};
use crate::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of events delivered by [`Simulator::next_event`]
/// across every simulator instance — a *derived sum*, maintained
/// incrementally alongside each simulator's own
/// [`Simulator::events_processed`] count. Relaxed increments: the
/// counter is a throughput meter (events/sec reporting in the bench
/// layer), never a synchronization point. Because every live simulator
/// in the process feeds it, deltas around a region are only attributable
/// to one experiment when nothing else runs concurrently; per-cell
/// accounting should read the per-simulator count instead.
static EVENTS_PROCESSED: AtomicU64 = AtomicU64::new(0);

/// Total events delivered by all simulators in this process so far.
/// Benchmarks subtract a snapshot taken before an experiment to get its
/// event count and derive events/sec from wall-clock; prefer
/// [`Simulator::events_processed`] when a single simulator's count is
/// what you mean.
#[must_use]
pub fn events_processed() -> u64 {
    EVENTS_PROCESSED.load(Ordering::Relaxed)
}

/// A deterministic virtual-time simulator over events of type `E`.
#[derive(Clone)]
pub struct Simulator<E = ()> {
    now: SimTime,
    queue: EventQueue<E>,
    events: u64,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Simulator::new()
    }
}

impl<E> Simulator<E> {
    /// A simulator at time zero with no pending events.
    #[must_use]
    pub fn new() -> Simulator<E> {
        Simulator {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            events: 0,
        }
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events delivered by *this* simulator's [`Simulator::next_event`].
    /// Unlike the process-wide [`events_processed`] sum, this count is
    /// unaffected by other simulators running concurrently (e.g. other
    /// experiment cells under `par_map`), so it is the honest per-cell
    /// figure for metrics snapshots. Cloning a simulator clones the
    /// count along with the clock it describes.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Advances the clock by `d` (closed-loop style).
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Schedules an event at an absolute time, returning a key that can
    /// later cancel it. Scheduling in the past is a logic error and
    /// panics (it would silently reorder causality).
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventKey {
        assert!(at >= self.now, "scheduling at {at} before now {}", self.now);
        self.queue.push(at, event)
    }

    /// Schedules an event `d` after the current time. Routed through
    /// [`Simulator::schedule_at`] so both entry points share the
    /// not-in-the-past causality check (`now + d` can only trip it on
    /// arithmetic overflow, which the check turns into a loud panic
    /// instead of a silently reordered simulation).
    pub fn schedule_in(&mut self, d: SimDuration, event: E) -> EventKey {
        self.schedule_at(self.now + d, event)
    }

    /// Cancels a previously scheduled event. Returns `false` if it
    /// already fired or was already cancelled.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        self.queue.cancel(key)
    }

    /// Pops the earliest event, warping the clock to its timestamp.
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        let (at, event) = self.queue.pop()?;
        debug_assert!(at >= self.now);
        self.now = at;
        self.events += 1;
        EVENTS_PROCESSED.fetch_add(1, Ordering::Relaxed);
        Some((at, event))
    }

    /// Timestamp of the next pending event, if any.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Calendar-queue counters and geometry (overflow pressure, rebuild
    /// churn, bucket count) for metrics snapshots.
    #[must_use]
    pub fn queue_stats(&self) -> crate::event::QueueStats {
        self.queue.stats()
    }

    /// Runs the event loop to exhaustion, applying `handler` to each
    /// event. The handler may schedule further events.
    pub fn run<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut Simulator<E>, SimTime, E),
    {
        while let Some((at, event)) = self.next_event() {
            handler(self, at, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_advance() {
        let mut sim: Simulator = Simulator::new();
        assert_eq!(sim.now(), SimTime::ZERO);
        sim.advance(SimDuration::from_millis(3));
        sim.advance(SimDuration::from_micros(500));
        assert_eq!(sim.now(), SimTime(3_500_000));
    }

    #[test]
    fn event_loop_warps_clock() {
        let mut sim = Simulator::new();
        sim.schedule_in(SimDuration::from_millis(10), "late");
        sim.schedule_in(SimDuration::from_millis(1), "early");
        let (t, e) = sim.next_event().unwrap();
        assert_eq!(e, "early");
        assert_eq!(sim.now(), t);
        let (t2, e2) = sim.next_event().unwrap();
        assert_eq!(e2, "late");
        assert_eq!(t2, SimTime(10_000_000));
        assert!(sim.next_event().is_none());
    }

    #[test]
    fn run_allows_rescheduling() {
        // A chain of events, each scheduling the next until a countdown
        // expires; total elapsed time must be the sum.
        let mut sim = Simulator::new();
        sim.schedule_in(SimDuration::from_millis(1), 5u32);
        let mut fired = 0;
        sim.run(|sim, _at, remaining| {
            fired += 1;
            if remaining > 0 {
                sim.schedule_in(SimDuration::from_millis(1), remaining - 1);
            }
        });
        assert_eq!(fired, 6);
        assert_eq!(sim.now(), SimTime(6_000_000));
    }

    #[test]
    fn per_simulator_event_count_is_isolated() {
        let mut a = Simulator::new();
        let mut b = Simulator::new();
        for i in 0..5u64 {
            a.schedule_at(SimTime(i), ());
        }
        b.schedule_at(SimTime(0), ());
        let global_before = events_processed();
        while a.next_event().is_some() {}
        while b.next_event().is_some() {}
        assert_eq!(a.events_processed(), 5);
        assert_eq!(b.events_processed(), 1);
        // The process-wide sum is derived: it advanced by at least the
        // two per-simulator counts (other tests may also be running).
        assert!(events_processed() - global_before >= 6);
        // Cloning carries the count with the clock it describes.
        assert_eq!(a.clone().events_processed(), 5);
    }

    #[test]
    #[should_panic(expected = "scheduling at")]
    fn scheduling_in_the_past_panics() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.advance(SimDuration::from_millis(5));
        sim.schedule_at(SimTime(1), ());
    }
}
