//! Virtual time: absolute instants and durations in integer nanoseconds.
//!
//! Integer nanoseconds keep arithmetic exact and ordering total — two
//! properties floating-point seconds lack and a deterministic simulator
//! needs.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant on the simulation clock (nanoseconds since start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Duration since an earlier instant; saturates to zero if `earlier`
    /// is actually later (callers measuring RTTs never want a panic).
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Instant as fractional milliseconds (for plotting).
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Instant as fractional seconds (for plotting).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// From whole microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// From whole milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// From whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// From fractional milliseconds, rounding to the nearest nanosecond
    /// and clamping negatives to zero (sampled latencies cannot be
    /// negative).
    #[must_use]
    pub fn from_millis_f64(ms: f64) -> SimDuration {
        SimDuration((ms.max(0.0) * 1_000_000.0).round() as u64)
    }

    /// From fractional microseconds (clamping negatives to zero).
    #[must_use]
    pub fn from_micros_f64(us: f64) -> SimDuration {
        SimDuration((us.max(0.0) * 1_000.0).round() as u64)
    }

    /// Duration as fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs(1), SimDuration(1_000_000_000));
        assert_eq!(SimDuration::from_millis(3), SimDuration(3_000_000));
        assert_eq!(SimDuration::from_micros(5), SimDuration(5_000));
        assert_eq!(SimDuration::from_millis_f64(0.665), SimDuration(665_000));
        assert_eq!(SimDuration::from_millis_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(2);
        assert_eq!(t, SimTime(2_000_000));
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_millis(2));
        // Saturating: asking for "earlier - later" yields zero.
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis(4) / 2, SimDuration::from_millis(2));
        assert_eq!(SimDuration::from_millis(4) * 2, SimDuration::from_millis(8));
        assert_eq!(
            SimDuration::from_millis(4) - SimDuration::from_millis(1),
            SimDuration::from_millis(3)
        );
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_micros(2).to_string(), "2.000us");
        assert_eq!(SimDuration(42).to_string(), "42ns");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![SimTime(5), SimTime(1), SimTime(3), SimTime(1)];
        v.sort();
        assert_eq!(v, vec![SimTime(1), SimTime(1), SimTime(3), SimTime(5)]);
    }
}
