//! A point-to-point link model: propagation delay, serialization cost,
//! jitter, and optional fault injection.
//!
//! Used both for the controller↔switch control channel (whose latency is
//! part of every RTT Tango measures) and for data-plane hops between
//! switches in the network-wide experiments. Fault injection follows the
//! smoltcp examples' convention (drop chance, corruption chance) so the
//! robustness of inference under loss can be exercised.

use crate::dist::Dist;
use crate::rng::DetRng;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Configuration of one directional link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Base propagation delay distribution.
    pub propagation: Dist,
    /// Serialization cost per byte, in nanoseconds (e.g. 0.8 ns/B ≈ 10 Gb/s).
    pub ns_per_byte: f64,
    /// Probability a frame is silently dropped, `[0,1]`.
    pub drop_chance: f64,
    /// Probability one byte of the frame is corrupted, `[0,1]`.
    pub corrupt_chance: f64,
    /// Retransmission timeout in milliseconds, charged once per drop
    /// when using [`Link::delivery_latency`] (reliable-delivery view).
    pub retrans_timeout_ms: f64,
}

/// The outcome of offering a frame to a link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delivery {
    /// Frame arrives after the given delay, possibly altered.
    Arrived {
        /// End-to-end latency of this frame.
        delay: SimDuration,
        /// Frame contents on arrival.
        payload: Vec<u8>,
    },
    /// Frame was dropped.
    Dropped,
}

impl Link {
    /// An ideal link with a fixed latency and infinite bandwidth.
    #[must_use]
    pub fn ideal(latency: Dist) -> Link {
        Link {
            propagation: latency,
            ns_per_byte: 0.0,
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            retrans_timeout_ms: 5.0,
        }
    }

    /// A typical control channel: ~`rtt_ms/2` each way with 5 % jitter,
    /// 1 Gb/s serialization.
    #[must_use]
    pub fn control_channel(one_way_ms: f64) -> Link {
        Link {
            propagation: Dist::jittered(one_way_ms, 0.05),
            ns_per_byte: 8.0, // 1 Gb/s
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            retrans_timeout_ms: 5.0,
        }
    }

    /// Builder-style: set the drop probability.
    #[must_use]
    pub fn with_drop_chance(mut self, p: f64) -> Link {
        self.drop_chance = p.clamp(0.0, 1.0);
        self
    }

    /// Builder-style: set the corruption probability.
    #[must_use]
    pub fn with_corrupt_chance(mut self, p: f64) -> Link {
        self.corrupt_chance = p.clamp(0.0, 1.0);
        self
    }

    /// Latency for a frame of `bytes` bytes, ignoring faults.
    pub fn latency(&self, bytes: usize, rng: &mut DetRng) -> SimDuration {
        let prop = self.propagation.sample(rng);
        let ser = SimDuration((self.ns_per_byte * bytes as f64).round() as u64);
        prop + ser
    }

    /// Latency for reliably delivering a frame: each drop costs one
    /// retransmission timeout before the (re)try's propagation. This is
    /// how a lossy control channel looks to a sender with
    /// acknowledgement-based recovery.
    pub fn delivery_latency(&self, bytes: usize, rng: &mut DetRng) -> SimDuration {
        let mut total = SimDuration::ZERO;
        // Cap retries to keep pathological configurations terminating.
        for _ in 0..64 {
            if !rng.chance(self.drop_chance) {
                break;
            }
            total += SimDuration::from_millis_f64(self.retrans_timeout_ms);
        }
        total + self.latency(bytes, rng)
    }

    /// Offers a frame to the link, applying loss and corruption.
    pub fn transmit(&self, mut payload: Vec<u8>, rng: &mut DetRng) -> Delivery {
        if rng.chance(self.drop_chance) {
            return Delivery::Dropped;
        }
        let delay = self.latency(payload.len(), rng);
        if !payload.is_empty() && rng.chance(self.corrupt_chance) {
            let idx = rng.index(payload.len());
            payload[idx] ^= 1 << rng.index(8);
        }
        Delivery::Arrived { delay, payload }
    }
}

impl Default for Link {
    fn default() -> Link {
        Link::ideal(Dist::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_link_is_lossless_and_fixed() {
        let link = Link::ideal(Dist::Constant(1.0));
        let mut rng = DetRng::new(0);
        for _ in 0..100 {
            match link.transmit(vec![0u8; 100], &mut rng) {
                Delivery::Arrived { delay, payload } => {
                    assert_eq!(delay, SimDuration::from_millis(1));
                    assert_eq!(payload, vec![0u8; 100]);
                }
                Delivery::Dropped => panic!("ideal link dropped"),
            }
        }
    }

    #[test]
    fn serialization_cost_scales_with_size() {
        let link = Link {
            propagation: Dist::ZERO,
            ns_per_byte: 8.0,
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            retrans_timeout_ms: 5.0,
        };
        let mut rng = DetRng::new(0);
        assert_eq!(link.latency(1000, &mut rng), SimDuration(8000));
        assert_eq!(link.latency(0, &mut rng), SimDuration::ZERO);
    }

    #[test]
    fn drop_chance_is_respected() {
        let link = Link::ideal(Dist::ZERO).with_drop_chance(0.5);
        let mut rng = DetRng::new(42);
        let n = 10_000;
        let dropped = (0..n)
            .filter(|_| matches!(link.transmit(vec![0], &mut rng), Delivery::Dropped))
            .count();
        let frac = dropped as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "drop fraction {frac}");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let link = Link::ideal(Dist::ZERO).with_corrupt_chance(1.0);
        let mut rng = DetRng::new(7);
        let original = vec![0u8; 64];
        match link.transmit(original.clone(), &mut rng) {
            Delivery::Arrived { payload, .. } => {
                let flipped: u32 = original
                    .iter()
                    .zip(&payload)
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum();
                assert_eq!(flipped, 1);
            }
            Delivery::Dropped => panic!("should not drop"),
        }
    }

    #[test]
    fn control_channel_has_positive_latency() {
        let link = Link::control_channel(2.0);
        let mut rng = DetRng::new(1);
        let d = link.latency(100, &mut rng);
        assert!(d > SimDuration::ZERO);
    }
}

#[cfg(test)]
mod delivery_tests {
    use super::*;

    #[test]
    fn lossless_delivery_equals_latency_distribution() {
        let link = Link::ideal(Dist::Constant(1.0));
        let mut rng = DetRng::new(0);
        assert_eq!(
            link.delivery_latency(100, &mut rng),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn drops_charge_retransmission_timeouts() {
        let link = Link::ideal(Dist::Constant(1.0)).with_drop_chance(0.5);
        let mut rng = DetRng::new(42);
        let n = 20_000;
        let mean_ms = (0..n)
            .map(|_| link.delivery_latency(10, &mut rng).as_millis_f64())
            .sum::<f64>()
            / f64::from(n);
        // E[drops] = p/(1-p) = 1 at p = 0.5 → mean ≈ 1 + 1·5 ms.
        assert!((mean_ms - 6.0).abs() < 0.3, "mean {mean_ms}");
    }

    #[test]
    fn pathological_drop_chance_terminates() {
        let link = Link::ideal(Dist::Constant(0.1)).with_drop_chance(1.0);
        let mut rng = DetRng::new(1);
        let d = link.delivery_latency(10, &mut rng);
        assert_eq!(d, SimDuration::from_millis_f64(64.0 * 5.0 + 0.1));
    }
}
