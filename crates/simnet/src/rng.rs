//! Deterministic random number generation.
//!
//! A thin wrapper around [`rand::rngs::StdRng`] that (a) forces an
//! explicit seed everywhere, and (b) offers the handful of sampling
//! helpers the simulator needs, including Gaussian sampling via
//! Box–Muller so we avoid a dependency on `rand_distr`.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic, explicitly-seeded RNG.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
    /// Cached second output of the last Box–Muller transform.
    gauss_spare: Option<f64>,
}

impl DetRng {
    /// Creates an RNG from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> DetRng {
        DetRng {
            inner: StdRng::seed_from_u64(seed),
            gauss_spare: None,
        }
    }

    /// Derives an independent child RNG; `label` domain-separates streams
    /// so e.g. the latency noise of two switches never correlates.
    #[must_use]
    pub fn fork(&mut self, label: u64) -> DetRng {
        let seed = self.inner.gen::<u64>() ^ label.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        DetRng::new(seed)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform index in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() over empty collection");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Standard normal sample (Box–Muller, using both outputs).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Draw u1 away from zero to keep ln() finite.
        let u1: f64 = loop {
            let u = self.f64();
            if u > f64::EPSILON {
                break u;
            }
        };
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Exponential sample with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = loop {
            let u = self.f64();
            if u > f64::EPSILON {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element by reference.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forks_are_deterministic_and_independent() {
        let mut parent1 = DetRng::new(7);
        let mut parent2 = DetRng::new(7);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut other = parent1.fork(2);
        assert_ne!(c1.next_u64(), other.next_u64());
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = DetRng::new(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = DetRng::new(5);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-5.0));
        assert!(rng.chance(7.0));
    }
}
