//! A time-ordered event queue with stable FIFO ordering for ties.
//!
//! `BinaryHeap` alone is not deterministic for simultaneous events (heap
//! order among equal keys is arbitrary), so each entry carries a
//! monotonically increasing sequence number: events scheduled earlier pop
//! earlier when timestamps tie. This is the property that makes whole
//! simulations replayable.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-queue of `(SimTime, E)` pairs, FIFO among equal times.
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Timestamp of the earliest event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.peek_time(), Some(SimTime(10)));
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::ZERO + SimDuration::from_millis(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_ties_and_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), 1);
        q.push(SimTime(3), 2);
        q.push(SimTime(5), 3);
        q.push(SimTime(3), 4);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime(1), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
