//! A time-ordered event queue with stable FIFO ordering for ties and
//! O(log n) cancellation.
//!
//! `BinaryHeap` alone is not deterministic for simultaneous events (heap
//! order among equal keys is arbitrary), so each entry carries a
//! monotonically increasing sequence number: events scheduled earlier pop
//! earlier when timestamps tie. This is the property that makes whole
//! simulations replayable.
//!
//! Every push hands back an [`EventKey`]; [`EventQueue::cancel`] marks
//! the entry dead (lazy deletion — the tombstone is dropped when the
//! entry surfaces), which is what lets one simulator drive many switches
//! whose in-flight work can be superseded or aborted.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Identifies one scheduled event for later cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventKey(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-queue of `(SimTime, E)` pairs, FIFO among equal times.
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Keys of entries still in the heap and not cancelled. Cancellation
    /// removes the key here; the heap entry itself is dropped lazily when
    /// it reaches the front.
    live: HashSet<u64>,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            live: HashSet::new(),
        }
    }

    /// Schedules `event` at absolute time `at`, returning its key.
    pub fn push(&mut self, at: SimTime, event: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        self.live.insert(seq);
        EventKey(seq)
    }

    /// Cancels a scheduled event. Returns `false` if the key was already
    /// delivered or cancelled.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        self.live.remove(&key.0)
    }

    /// Drops any cancelled entries sitting at the front of the heap.
    fn skip_cancelled(&mut self) {
        while let Some(front) = self.heap.peek() {
            if self.live.contains(&front.seq) {
                break;
            }
            self.heap.pop();
        }
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_keyed().map(|(at, _, e)| (at, e))
    }

    /// Removes and returns the earliest live event along with its key.
    pub fn pop_keyed(&mut self) -> Option<(SimTime, EventKey, E)> {
        self.skip_cancelled();
        let e = self.heap.pop()?;
        self.live.remove(&e.seq);
        Some((e.at, EventKey(e.seq), e.event))
    }

    /// Timestamp of the earliest live event without removing it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending (non-cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True if no live events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.peek_time(), Some(SimTime(10)));
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::ZERO + SimDuration::from_millis(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_ties_and_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), 1);
        q.push(SimTime(3), 2);
        q.push(SimTime(5), 3);
        q.push(SimTime(3), 4);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn cancelled_events_never_surface() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime(1), "a");
        let b = q.push(SimTime(2), "b");
        let c = q.push(SimTime(3), "c");
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double-cancel is a no-op");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((SimTime(1), "a")));
        assert_eq!(q.pop(), Some((SimTime(3), "c")));
        assert_eq!(q.pop(), None);
        assert!(!q.cancel(a), "already delivered");
        let _ = c;
    }

    #[test]
    fn cancel_at_queue_head_updates_peek() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime(1), 1);
        q.push(SimTime(2), 2);
        assert!(q.cancel(a));
        assert_eq!(q.peek_time(), Some(SimTime(2)));
    }

    #[test]
    fn pop_keyed_returns_matching_keys() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime(5), "x");
        let (at, key, e) = q.pop_keyed().unwrap();
        assert_eq!((at, e), (SimTime(5), "x"));
        assert_eq!(key, a);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime(1), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
