//! A time-ordered event queue with stable FIFO ordering for ties and
//! O(1) cancellation.
//!
//! `BinaryHeap` alone is not deterministic for simultaneous events (heap
//! order among equal keys is arbitrary), so each entry carries a
//! monotonically increasing sequence number: events scheduled earlier pop
//! earlier when timestamps tie. This is the property that makes whole
//! simulations replayable.
//!
//! Every push hands back an [`EventKey`]; [`EventQueue::cancel`] marks
//! the entry dead (lazy deletion — the tombstone is dropped when the
//! entry surfaces). Liveness lives in a generation-stamped slab rather
//! than a hash set: a key encodes `(slot, generation)`, so cancel and
//! is-live checks are a bounds-checked array access with no hashing, and
//! recycled slots can never confuse a stale key with a fresh event.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifies one scheduled event for later cancellation.
///
/// Encodes `(generation << 32) | slot` into the queue's slab; a key for
/// a delivered or cancelled event fails the generation check and is
/// simply reported dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventKey(u64);

impl EventKey {
    fn new(slot: u32, gen: u32) -> EventKey {
        EventKey((u64::from(gen) << 32) | u64::from(slot))
    }

    fn slot(self) -> u32 {
        self.0 as u32
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One slab cell. The generation counter advances each time the slot is
/// recycled, invalidating any keys minted for earlier occupants.
struct Slot {
    gen: u32,
    live: bool,
}

/// A min-queue of `(SimTime, E)` pairs, FIFO among equal times.
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Slab of liveness flags indexed by the slot half of each key. A
    /// slot stays bound to its heap entry until that entry surfaces
    /// (pop or cancelled-skip), at which point the generation bumps and
    /// the slot returns to `free`.
    slots: Vec<Slot>,
    free: Vec<u32>,
    live_count: usize,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            slots: Vec::new(),
            free: Vec::new(),
            live_count: 0,
        }
    }

    /// Schedules `event` at absolute time `at`, returning its key.
    pub fn push(&mut self, at: SimTime, event: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize].live = true;
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("slab overflow");
                self.slots.push(Slot { gen: 0, live: true });
                slot
            }
        };
        let gen = self.slots[slot as usize].gen;
        self.heap.push(Entry {
            at,
            seq,
            slot,
            gen,
            event,
        });
        self.live_count += 1;
        EventKey::new(slot, gen)
    }

    /// Cancels a scheduled event. Returns `false` if the key was already
    /// delivered or cancelled.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        match self.slots.get_mut(key.slot() as usize) {
            Some(s) if s.gen == key.gen() && s.live => {
                s.live = false;
                self.live_count -= 1;
                true
            }
            _ => false,
        }
    }

    /// Returns the slot to the free list, invalidating outstanding keys.
    /// Called only when the slot's heap entry has surfaced.
    fn release(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        s.live = false;
        self.free.push(slot);
    }

    /// Drops any cancelled entries sitting at the front of the heap.
    fn skip_cancelled(&mut self) {
        while let Some(front) = self.heap.peek() {
            if self.slots[front.slot as usize].live {
                break;
            }
            let e = self.heap.pop().expect("peeked entry");
            self.release(e.slot);
        }
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_keyed().map(|(at, _, e)| (at, e))
    }

    /// Removes and returns the earliest live event along with its key.
    pub fn pop_keyed(&mut self) -> Option<(SimTime, EventKey, E)> {
        self.skip_cancelled();
        let e = self.heap.pop()?;
        self.release(e.slot);
        self.live_count -= 1;
        Some((e.at, EventKey::new(e.slot, e.gen), e.event))
    }

    /// Timestamp of the earliest live event without removing it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending (non-cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// True if no live events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.peek_time(), Some(SimTime(10)));
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::ZERO + SimDuration::from_millis(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_ties_and_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), 1);
        q.push(SimTime(3), 2);
        q.push(SimTime(5), 3);
        q.push(SimTime(3), 4);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn cancelled_events_never_surface() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime(1), "a");
        let b = q.push(SimTime(2), "b");
        let c = q.push(SimTime(3), "c");
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double-cancel is a no-op");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((SimTime(1), "a")));
        assert_eq!(q.pop(), Some((SimTime(3), "c")));
        assert_eq!(q.pop(), None);
        assert!(!q.cancel(a), "already delivered");
        let _ = c;
    }

    #[test]
    fn cancel_at_queue_head_updates_peek() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime(1), 1);
        q.push(SimTime(2), 2);
        assert!(q.cancel(a));
        assert_eq!(q.peek_time(), Some(SimTime(2)));
    }

    #[test]
    fn pop_keyed_returns_matching_keys() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime(5), "x");
        let (at, key, e) = q.pop_keyed().unwrap();
        assert_eq!((at, e), (SimTime(5), "x"));
        assert_eq!(key, a);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime(1), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn recycled_slots_reject_stale_keys() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime(1), 1);
        assert_eq!(q.pop(), Some((SimTime(1), 1)));
        // The slot is recycled for a fresh event; the old key must not
        // be able to cancel it.
        let b = q.push(SimTime(2), 2);
        assert!(!q.cancel(a), "stale generation");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(b));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancelled_then_recycled_slot_stays_consistent() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime(1), "a");
        assert!(q.cancel(a));
        // Slot is not yet recycled (entry still buried in the heap);
        // pushing more events must not resurrect the cancelled one.
        let b = q.push(SimTime(2), "b");
        assert_eq!(q.pop(), Some((SimTime(2), "b")));
        assert!(!q.cancel(a));
        assert!(!q.cancel(b));
        // After the cancelled entry surfaced and its slot recycled, a
        // new push reuses it under a fresh generation.
        let c = q.push(SimTime(3), "c");
        assert!(!q.cancel(a));
        assert_eq!(q.pop(), Some((SimTime(3), "c")));
        let _ = c;
    }
}
