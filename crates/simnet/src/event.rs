//! A time-ordered event queue with stable FIFO ordering for ties and
//! O(1) cancellation.
//!
//! A comparison heap alone is not deterministic for simultaneous events
//! (order among equal keys is arbitrary), so each entry carries a
//! monotonically increasing sequence number: events scheduled earlier pop
//! earlier when timestamps tie. This is the property that makes whole
//! simulations replayable.
//!
//! Every push hands back an [`EventKey`]; [`EventQueue::cancel`] marks
//! the entry dead (lazy deletion — the tombstone is dropped when the
//! entry surfaces). Liveness lives in a generation-stamped slab rather
//! than a hash set: a key encodes `(slot, generation)`, so cancel and
//! is-live checks are a bounds-checked array access with no hashing, and
//! recycled slots can never confuse a stale key with a fresh event.
//!
//! # Calendar layout
//!
//! [`EventQueue`] is a **calendar queue** (Brown 1988) over the virtual
//! clock rather than a binary heap: the near future is divided into
//! `nbuckets` *days* of `2^shift` ns each, and an event lands in the
//! bucket `(at >> shift) % nbuckets`. With the bucket width tuned to the
//! average inter-event gap, push and pop are O(1) — no sift-up/down, no
//! payload moves (payloads live in the slot arena and never migrate
//! between tiers; the calendar stores 20-byte `(at, seq, slot)` stubs).
//!
//! The two-tier invariant: buckets hold only events whose day falls in
//! the current window `[base_day, base_day + nbuckets)` — so day →
//! bucket is injective and every bucket is single-day — while events
//! beyond the window wait in a sorted **overflow** tier (`BTreeSet` on
//! `(at, seq)`). When the window drains, the queue rebuilds around the
//! overflow's earliest day; when the live population outgrows (2×) or
//! undershoots (⅛×) the bucket count, it rebuilds with the bucket count
//! and width re-derived from the pending span. Buckets are unsorted;
//! pop scans its (≈1-entry) day bucket for the `(at, seq)` minimum,
//! which is a total order, so pop order is independent of physical
//! bucket order and bit-identical to the old heap's.
//!
//! The previous `BinaryHeap` implementation survives as
//! [`legacy::EventQueue`]: the behavioural oracle the calendar queue is
//! property-tested against, and the baseline in the `event_queue`
//! criterion bench.

use crate::time::SimTime;
use std::collections::BTreeSet;

/// Identifies one scheduled event for later cancellation.
///
/// Encodes `(generation << 32) | slot` into the queue's slab; a key for
/// a delivered or cancelled event fails the generation check and is
/// simply reported dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventKey(u64);

impl EventKey {
    fn new(slot: u32, gen: u32) -> EventKey {
        EventKey((u64::from(gen) << 32) | u64::from(slot))
    }

    fn slot(self) -> u32 {
        self.0 as u32
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// One arena cell: generation stamp, liveness, and the event payload
/// (present iff live — cancel drops the payload eagerly). The
/// generation advances each time the slot is recycled, invalidating any
/// keys minted for earlier occupants. A slot stays bound to its calendar
/// stub until that stub is physically removed (pop, purge, or rebuild),
/// so a freed slot can never be aliased by a stale stub.
#[derive(Clone)]
struct Slot<E> {
    gen: u32,
    live: bool,
    event: Option<E>,
}

/// A calendar stub: everything pop ordering needs, payload stays in the
/// arena.
#[derive(Clone, Copy)]
struct Stub {
    at: u64,
    seq: u64,
    slot: u32,
}

/// Operational counters a calendar queue accumulates over its lifetime,
/// plus a snapshot of its current geometry. Read with
/// [`EventQueue::stats`]; feeds the telemetry metrics registry so
/// experiment cells can report how hard the calendar worked (overflow
/// pressure and rebuild churn are the two ways a calendar queue loses
/// its O(1) claim).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Stubs filed into the sorted overflow tier (far-future or
    /// pre-window pushes) instead of a calendar bucket.
    pub overflow_pushes: u64,
    /// Full geometry rebuilds (growth, shrink, window exhaustion, or
    /// pre-window push).
    pub rebuilds: u64,
    /// Current calendar bucket count.
    pub buckets: u64,
    /// Stubs currently waiting in the overflow tier.
    pub overflow_pending: u64,
}

/// Smallest bucket count; also the initial window size.
const MIN_BUCKETS: usize = 16;
/// Largest bucket count a rebuild will allocate.
const MAX_BUCKETS: usize = 1 << 20;
/// Initial bucket width: 2^14 ns ≈ 16 µs, a reasonable guess for
/// control-plane event spacing until the first rebuild measures reality.
const INITIAL_SHIFT: u32 = 14;

/// A min-queue of `(SimTime, E)` pairs, FIFO among equal times.
#[derive(Clone)]
pub struct EventQueue<E> {
    /// The arena: payloads + liveness, indexed by the slot half of keys.
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    next_seq: u64,
    /// Pending (non-cancelled) events across both tiers.
    live_count: usize,
    /// Physical stubs across both tiers, including tombstones.
    physical: usize,
    /// Calendar tier: `nbuckets` (power of two) unsorted day buckets.
    buckets: Vec<Vec<Stub>>,
    /// One bit per bucket: set iff the bucket is non-empty. Lets the
    /// pop-side day scan skip 64 empty buckets per word.
    occupied: Vec<u64>,
    /// log2 of the bucket width in ns.
    shift: u32,
    /// First day of the current window.
    base_day: u64,
    /// Lower bound on the earliest pending day — the pop scan cursor.
    cur_day: u64,
    /// Far-future tier: stubs with `day >= base_day + nbuckets`, sorted
    /// by `(at, seq)` (slot rides along; seq is unique).
    overflow: BTreeSet<(u64, u64, u32)>,
    /// Lifetime overflow pushes; geometry snapshot added by `stats()`.
    overflow_pushes: u64,
    /// Lifetime geometry rebuilds.
    rebuilds: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> EventQueue<E> {
        EventQueue {
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            live_count: 0,
            physical: 0,
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: vec![0; MIN_BUCKETS.div_ceil(64)],
            shift: INITIAL_SHIFT,
            base_day: 0,
            cur_day: 0,
            overflow: BTreeSet::new(),
            overflow_pushes: 0,
            rebuilds: 0,
        }
    }

    /// Lifetime counters plus current geometry. O(1).
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            overflow_pushes: self.overflow_pushes,
            rebuilds: self.rebuilds,
            buckets: self.buckets.len() as u64,
            overflow_pending: self.overflow.len() as u64,
        }
    }

    /// First day past the current window.
    fn horizon(&self) -> u64 {
        self.base_day.saturating_add(self.buckets.len() as u64)
    }

    fn mark(&mut self, b: usize) {
        self.occupied[b >> 6] |= 1 << (b & 63);
    }

    fn unmark(&mut self, b: usize) {
        self.occupied[b >> 6] &= !(1 << (b & 63));
    }

    /// Schedules `event` at absolute time `at`, returning its key.
    pub fn push(&mut self, at: SimTime, event: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                s.live = true;
                s.event = Some(event);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("slab overflow");
                self.slots.push(Slot {
                    gen: 0,
                    live: true,
                    event: Some(event),
                });
                slot
            }
        };
        let gen = self.slots[slot as usize].gen;
        self.live_count += 1;
        self.file_stub(Stub {
            at: at.0,
            seq,
            slot,
        });
        if self.live_count > 2 * self.buckets.len() {
            self.rebuild();
        }
        EventKey::new(slot, gen)
    }

    /// Places a stub in the tier its day belongs to.
    fn file_stub(&mut self, e: Stub) {
        self.physical += 1;
        let day = e.at >> self.shift;
        if self.physical == 1 && (day < self.base_day || day >= self.horizon()) {
            // The queue held nothing else and the clock has drifted out
            // of the window: slide the (empty) window to this day
            // instead of bouncing the stub through overflow and a
            // rebuild. This is the steady state of lightly loaded
            // simulations — a handful of in-flight events chasing an
            // ever-advancing clock.
            self.base_day = day;
            self.cur_day = day;
        }
        if day < self.base_day {
            // Pre-window push (the queue itself does not require
            // monotone times; the simulator's causality check does).
            // Park it in overflow and rebuild around the new minimum.
            self.overflow_pushes += 1;
            self.overflow.insert((e.at, e.seq, e.slot));
            self.rebuild();
        } else if day >= self.horizon() {
            self.overflow_pushes += 1;
            self.overflow.insert((e.at, e.seq, e.slot));
        } else {
            let b = (day as usize) & (self.buckets.len() - 1);
            self.buckets[b].push(e);
            self.mark(b);
            if day < self.cur_day {
                self.cur_day = day;
            }
        }
    }

    /// Cancels a scheduled event. Returns `false` if the key was already
    /// delivered or cancelled. O(1): flips the liveness bit and drops
    /// the payload; the stub is reaped when it surfaces.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        match self.slots.get_mut(key.slot() as usize) {
            Some(s) if s.gen == key.gen() && s.live => {
                s.live = false;
                s.event = None;
                self.live_count -= 1;
                true
            }
            _ => false,
        }
    }

    /// Returns the slot to the free list, invalidating outstanding keys.
    /// Called only when the slot's stub has been physically removed.
    fn release(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        s.live = false;
        s.event = None;
        self.free.push(slot);
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_keyed().map(|(at, _, e)| (at, e))
    }

    /// Removes and returns the earliest live event along with its key.
    pub fn pop_keyed(&mut self) -> Option<(SimTime, EventKey, E)> {
        if self.live_count == 0 {
            self.purge_all();
            return None;
        }
        let (b, idx) = self.locate_min().expect("live_count > 0");
        let e = self.buckets[b].swap_remove(idx);
        if self.buckets[b].is_empty() {
            self.unmark(b);
        }
        self.physical -= 1;
        self.live_count -= 1;
        let gen = self.slots[e.slot as usize].gen;
        let ev = self.slots[e.slot as usize]
            .event
            .take()
            .expect("live slot has payload");
        self.release(e.slot);
        if self.buckets.len() > MIN_BUCKETS && self.live_count < self.buckets.len() / 8 {
            self.rebuild();
        }
        Some((SimTime(e.at), EventKey::new(e.slot, gen), ev))
    }

    /// Timestamp of the earliest live event without removing it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.live_count == 0 {
            self.purge_all();
            return None;
        }
        let (b, idx) = self.locate_min().expect("live_count > 0");
        Some(SimTime(self.buckets[b][idx].at))
    }

    /// Finds the bucket and in-bucket index of the earliest live stub,
    /// reaping tombstones along the way and pulling the window forward
    /// over overflow when the calendar tier drains. Requires
    /// `live_count > 0`.
    fn locate_min(&mut self) -> Option<(usize, usize)> {
        loop {
            let mask = self.buckets.len() - 1;
            match self.next_occupied((self.cur_day as usize) & mask) {
                Some(b) => {
                    if let Some(idx) = self.reap_and_min(b) {
                        self.cur_day = self.buckets[b][idx].at >> self.shift;
                        return Some((b, idx));
                    }
                    // Bucket was all tombstones (now empty); rescan.
                }
                None => {
                    if self.overflow.is_empty() {
                        return None;
                    }
                    // Window exhausted: rebase it over the overflow tier.
                    self.rebuild();
                }
            }
        }
    }

    /// First non-empty bucket in cyclic day order starting at `start`.
    /// Word-at-a-time over the occupancy bitmap. Because buckets of
    /// days already drained are empty and day → bucket is injective
    /// within the window, the first set bit found in cyclic order is
    /// the earliest pending day.
    fn next_occupied(&self, start: usize) -> Option<usize> {
        let words = self.occupied.len();
        let mut w = start >> 6;
        let mut word = self.occupied[w] & (!0u64 << (start & 63));
        for _ in 0..=words {
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
            w += 1;
            if w == words {
                w = 0;
            }
            word = self.occupied[w];
        }
        None
    }

    /// Drops every tombstone in bucket `b` (releasing their slots) and
    /// returns the index of the live stub minimal in `(at, seq)`, or
    /// `None` if the bucket had no live stubs (it is then empty and
    /// unmarked).
    fn reap_and_min(&mut self, b: usize) -> Option<usize> {
        let mut best: Option<(u64, u64, usize)> = None;
        let mut i = 0;
        while i < self.buckets[b].len() {
            let e = self.buckets[b][i];
            if !self.slots[e.slot as usize].live {
                self.buckets[b].swap_remove(i);
                self.physical -= 1;
                self.release(e.slot);
                continue; // re-examine the stub swapped into `i`
            }
            if best.is_none_or(|(ba, bs, _)| (e.at, e.seq) < (ba, bs)) {
                best = Some((e.at, e.seq, i));
            }
            i += 1;
        }
        if self.buckets[b].is_empty() {
            self.unmark(b);
        }
        best.map(|(_, _, idx)| idx)
    }

    /// Releases every remaining stub. Called when the live count hits
    /// zero so all-cancelled queues return their slots, matching the
    /// legacy heap's skip-at-front behaviour.
    fn purge_all(&mut self) {
        if self.physical == 0 {
            return;
        }
        for b in 0..self.buckets.len() {
            while let Some(e) = self.buckets[b].pop() {
                self.release(e.slot);
            }
        }
        self.occupied.fill(0);
        for (_, _, slot) in std::mem::take(&mut self.overflow) {
            self.release(slot);
        }
        self.physical = 0;
    }

    /// Re-derives the calendar geometry from the pending population and
    /// redistributes every live stub (tombstones are reaped here).
    ///
    /// Deterministic: bucket count is the population's next power of
    /// two (clamped), bucket width is the mean inter-event gap rounded
    /// down to a power of two — both pure functions of pending state,
    /// so identical op histories rebuild identically.
    fn rebuild(&mut self) {
        self.rebuilds += 1;
        let mut all: Vec<Stub> = Vec::with_capacity(self.live_count);
        for b in 0..self.buckets.len() {
            while let Some(e) = self.buckets[b].pop() {
                if self.slots[e.slot as usize].live {
                    all.push(e);
                } else {
                    self.release(e.slot);
                }
            }
        }
        for (at, seq, slot) in std::mem::take(&mut self.overflow) {
            if self.slots[slot as usize].live {
                all.push(Stub { at, seq, slot });
            } else {
                self.release(slot);
            }
        }
        self.physical = all.len();
        if all.is_empty() {
            self.occupied.fill(0);
            self.base_day = 0;
            self.cur_day = 0;
            return;
        }
        let (mut min_at, mut max_at) = (u64::MAX, 0u64);
        for e in &all {
            min_at = min_at.min(e.at);
            max_at = max_at.max(e.at);
        }
        let count = all.len();
        let avg_gap = ((max_at - min_at) / count as u64).max(1);
        self.shift = (63 - avg_gap.leading_zeros()).min(48);
        let n = count.next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        self.buckets.resize_with(n, Vec::new);
        self.occupied.clear();
        self.occupied.resize(n.div_ceil(64), 0);
        self.base_day = min_at >> self.shift;
        self.cur_day = self.base_day;
        let horizon = self.horizon();
        for e in all {
            let day = e.at >> self.shift;
            debug_assert!(day >= self.base_day);
            if day < horizon {
                let b = (day as usize) & (n - 1);
                self.buckets[b].push(e);
                self.mark(b);
            } else {
                self.overflow.insert((e.at, e.seq, e.slot));
            }
        }
    }

    /// Number of pending (non-cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// True if no live events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The pre-calendar `BinaryHeap` event queue, kept as the behavioural
/// oracle: the calendar queue is property-tested against it (identical
/// pop sequences under interleaved push/pop/cancel) and benchmarked
/// against it in `benches/event_queue.rs`. Same observable API and
/// semantics; only the internal ordering structure differs.
pub mod legacy {
    use super::EventKey;
    use crate::time::SimTime;
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    struct Entry<E> {
        at: SimTime,
        seq: u64,
        slot: u32,
        gen: u32,
        event: E,
    }

    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl<E> Eq for Entry<E> {}

    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reversed: BinaryHeap is a max-heap, we want earliest first.
            other
                .at
                .cmp(&self.at)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    struct Slot {
        gen: u32,
        live: bool,
    }

    /// A min-queue of `(SimTime, E)` pairs, FIFO among equal times,
    /// backed by a `BinaryHeap` with payloads inline in heap entries.
    #[derive(Default)]
    pub struct EventQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        next_seq: u64,
        slots: Vec<Slot>,
        free: Vec<u32>,
        live_count: usize,
    }

    impl<E> EventQueue<E> {
        /// Creates an empty queue.
        #[must_use]
        pub fn new() -> EventQueue<E> {
            EventQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
                slots: Vec::new(),
                free: Vec::new(),
                live_count: 0,
            }
        }

        /// Schedules `event` at absolute time `at`, returning its key.
        pub fn push(&mut self, at: SimTime, event: E) -> EventKey {
            let seq = self.next_seq;
            self.next_seq += 1;
            let slot = match self.free.pop() {
                Some(slot) => {
                    self.slots[slot as usize].live = true;
                    slot
                }
                None => {
                    let slot = u32::try_from(self.slots.len()).expect("slab overflow");
                    self.slots.push(Slot { gen: 0, live: true });
                    slot
                }
            };
            let gen = self.slots[slot as usize].gen;
            self.heap.push(Entry {
                at,
                seq,
                slot,
                gen,
                event,
            });
            self.live_count += 1;
            EventKey::new(slot, gen)
        }

        /// Cancels a scheduled event. Returns `false` if the key was
        /// already delivered or cancelled.
        pub fn cancel(&mut self, key: EventKey) -> bool {
            match self.slots.get_mut(key.slot() as usize) {
                Some(s) if s.gen == key.gen() && s.live => {
                    s.live = false;
                    self.live_count -= 1;
                    true
                }
                _ => false,
            }
        }

        fn release(&mut self, slot: u32) {
            let s = &mut self.slots[slot as usize];
            s.gen = s.gen.wrapping_add(1);
            s.live = false;
            self.free.push(slot);
        }

        fn skip_cancelled(&mut self) {
            while let Some(front) = self.heap.peek() {
                if self.slots[front.slot as usize].live {
                    break;
                }
                let e = self.heap.pop().expect("peeked entry");
                self.release(e.slot);
            }
        }

        /// Removes and returns the earliest live event.
        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            self.pop_keyed().map(|(at, _, e)| (at, e))
        }

        /// Removes and returns the earliest live event with its key.
        pub fn pop_keyed(&mut self) -> Option<(SimTime, EventKey, E)> {
            self.skip_cancelled();
            let e = self.heap.pop()?;
            self.release(e.slot);
            self.live_count -= 1;
            Some((e.at, EventKey::new(e.slot, e.gen), e.event))
        }

        /// Timestamp of the earliest live event without removing it.
        #[must_use]
        pub fn peek_time(&mut self) -> Option<SimTime> {
            self.skip_cancelled();
            self.heap.peek().map(|e| e.at)
        }

        /// Number of pending (non-cancelled) events.
        #[must_use]
        pub fn len(&self) -> usize {
            self.live_count
        }

        /// True if no live events are pending.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.peek_time(), Some(SimTime(10)));
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::ZERO + SimDuration::from_millis(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_ties_and_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), 1);
        q.push(SimTime(3), 2);
        q.push(SimTime(5), 3);
        q.push(SimTime(3), 4);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn cancelled_events_never_surface() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime(1), "a");
        let b = q.push(SimTime(2), "b");
        let c = q.push(SimTime(3), "c");
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double-cancel is a no-op");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((SimTime(1), "a")));
        assert_eq!(q.pop(), Some((SimTime(3), "c")));
        assert_eq!(q.pop(), None);
        assert!(!q.cancel(a), "already delivered");
        let _ = c;
    }

    #[test]
    fn cancel_at_queue_head_updates_peek() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime(1), 1);
        q.push(SimTime(2), 2);
        assert!(q.cancel(a));
        assert_eq!(q.peek_time(), Some(SimTime(2)));
    }

    #[test]
    fn pop_keyed_returns_matching_keys() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime(5), "x");
        let (at, key, e) = q.pop_keyed().unwrap();
        assert_eq!((at, e), (SimTime(5), "x"));
        assert_eq!(key, a);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime(1), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn recycled_slots_reject_stale_keys() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime(1), 1);
        assert_eq!(q.pop(), Some((SimTime(1), 1)));
        // The slot is recycled for a fresh event; the old key must not
        // be able to cancel it.
        let b = q.push(SimTime(2), 2);
        assert!(!q.cancel(a), "stale generation");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(b));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancelled_then_recycled_slot_stays_consistent() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime(1), "a");
        assert!(q.cancel(a));
        // Slot is not yet recycled (stub still buried in a bucket);
        // pushing more events must not resurrect the cancelled one.
        let b = q.push(SimTime(2), "b");
        assert_eq!(q.pop(), Some((SimTime(2), "b")));
        assert!(!q.cancel(a));
        assert!(!q.cancel(b));
        // After the cancelled stub surfaced and its slot recycled, a
        // new push reuses it under a fresh generation.
        let c = q.push(SimTime(3), "c");
        assert!(!q.cancel(a));
        assert_eq!(q.pop(), Some((SimTime(3), "c")));
        let _ = c;
    }

    #[test]
    fn far_future_events_route_through_overflow() {
        let mut q = EventQueue::new();
        // Way past the initial 16-bucket × 16 µs window.
        let far = SimTime::ZERO + SimDuration::from_secs(3600);
        q.push(far, "far");
        q.push(SimTime(100), "near");
        assert_eq!(q.pop(), Some((SimTime(100), "near")));
        // Window drained: next pop must rebase over the overflow tier.
        assert_eq!(q.peek_time(), Some(far));
        assert_eq!(q.pop(), Some((far, "far")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn growth_and_shrink_preserve_order() {
        // Push enough to force several grow rebuilds, interleave
        // cancels, then drain past the shrink threshold.
        let mut q = EventQueue::new();
        let mut keys = Vec::new();
        for i in 0..10_000u64 {
            // A mix of clustered and spread timestamps.
            let at = SimTime((i % 97) * 1_000 + (i / 97) * 5_000_000);
            keys.push(q.push(at, i));
        }
        for i in (0..10_000).step_by(3) {
            assert!(q.cancel(keys[i]));
        }
        let mut last: Option<(SimTime, u64)> = None;
        let mut popped = 0;
        while let Some((at, _, i)) = q.pop_keyed() {
            assert_ne!(i % 3, 0, "cancelled event {i} surfaced");
            if let Some((lat, lseq)) = last {
                assert!(at > lat || (at == lat && i > lseq), "out of order");
            }
            last = Some((at, i));
            popped += 1;
        }
        assert_eq!(popped, 10_000 - keys.len().div_ceil(3));
    }

    #[test]
    fn push_earlier_than_window_base_is_still_ordered() {
        let mut q = EventQueue::new();
        // Drag the window forward…
        q.push(SimTime(50_000_000), 1);
        assert_eq!(q.pop(), Some((SimTime(50_000_000), 1)));
        // …then push before it (legal at the queue layer; the simulator
        // enforces causality separately).
        q.push(SimTime(10), 2);
        q.push(SimTime(60_000_000), 3);
        assert_eq!(q.pop(), Some((SimTime(10), 2)));
        assert_eq!(q.pop(), Some((SimTime(60_000_000), 3)));
    }

    #[test]
    fn stats_count_overflow_and_rebuilds() {
        let mut q = EventQueue::new();
        assert_eq!(q.stats(), QueueStats::default().buckets_is(16));
        // With a near event holding the window in place, a far-future
        // push must route through overflow.
        q.push(SimTime(100), ());
        q.push(SimTime::ZERO + SimDuration::from_secs(3600), ());
        assert_eq!(q.stats().overflow_pushes, 1);
        assert_eq!(q.stats().overflow_pending, 1);
        // Enough pushes to trip a growth rebuild (2× bucket count).
        for i in 0..40u64 {
            q.push(SimTime(i * 1_000), ());
        }
        assert!(q.stats().rebuilds >= 1);
        assert!(q.stats().buckets >= 32);
    }

    impl QueueStats {
        fn buckets_is(mut self, n: u64) -> QueueStats {
            self.buckets = n;
            self
        }
    }

    #[test]
    fn legacy_queue_matches_on_a_smoke_sequence() {
        let mut a = EventQueue::new();
        let mut b = legacy::EventQueue::new();
        let mut ka = Vec::new();
        let mut kb = Vec::new();
        for i in 0..200u64 {
            let at = SimTime((i * 37) % 101);
            ka.push(a.push(at, i));
            kb.push(b.push(at, i));
        }
        for i in (0..200).step_by(7) {
            assert_eq!(a.cancel(ka[i]), b.cancel(kb[i]));
        }
        loop {
            assert_eq!(a.peek_time(), b.peek_time());
            assert_eq!(a.len(), b.len());
            match (a.pop(), b.pop()) {
                (None, None) => break,
                (x, y) => assert_eq!(x, y),
            }
        }
    }
}
