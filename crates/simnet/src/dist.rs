//! Parametric latency distributions.
//!
//! Switch latency models are expressed as [`Dist`] values — constant,
//! uniform, normal, log-normal, or exponential — sampled in fractional
//! milliseconds and clamped to non-negative durations. The paper's
//! figures are driven by the *shapes* of these distributions (e.g. the
//! noisy OVS slow path in Fig 2(a) vs the tight hardware fast path in
//! Fig 2(b)), so they are first-class configuration.

use crate::rng::DetRng;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// A latency distribution, parameterized in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Always exactly this many milliseconds.
    Constant(f64),
    /// Uniform between `lo` and `hi` milliseconds.
    Uniform {
        /// Lower bound (ms).
        lo: f64,
        /// Upper bound (ms).
        hi: f64,
    },
    /// Normal with the given mean/standard deviation (ms), clamped ≥ 0.
    Normal {
        /// Mean (ms).
        mean: f64,
        /// Standard deviation (ms).
        std_dev: f64,
    },
    /// Log-normal: `exp(N(mu, sigma))` — right-skewed, as real slow-path
    /// latencies are. Parameters are of the underlying normal.
    LogNormal {
        /// Location of the underlying normal.
        mu: f64,
        /// Scale of the underlying normal.
        sigma: f64,
    },
    /// Exponential with the given mean (ms).
    Exponential {
        /// Mean (ms).
        mean: f64,
    },
}

impl Dist {
    /// A degenerate zero-latency distribution.
    pub const ZERO: Dist = Dist::Constant(0.0);

    /// Convenience: a normal distribution described by mean and a
    /// *relative* jitter fraction (e.g. `0.05` = 5 % of the mean).
    #[must_use]
    pub fn jittered(mean_ms: f64, jitter_frac: f64) -> Dist {
        Dist::Normal {
            mean: mean_ms,
            std_dev: mean_ms * jitter_frac,
        }
    }

    /// Samples one value in milliseconds (non-negative).
    pub fn sample_ms(&self, rng: &mut DetRng) -> f64 {
        let v = match *self {
            Dist::Constant(ms) => ms,
            Dist::Uniform { lo, hi } => {
                if hi <= lo {
                    lo
                } else {
                    lo + (hi - lo) * rng.f64()
                }
            }
            Dist::Normal { mean, std_dev } => rng.normal(mean, std_dev),
            Dist::LogNormal { mu, sigma } => rng.normal(mu, sigma).exp(),
            Dist::Exponential { mean } => rng.exponential(mean),
        };
        v.max(0.0)
    }

    /// Samples one value as a [`SimDuration`].
    pub fn sample(&self, rng: &mut DetRng) -> SimDuration {
        SimDuration::from_millis_f64(self.sample_ms(rng))
    }

    /// The distribution's theoretical mean in milliseconds (for
    /// Normal/LogNormal this ignores the ≥0 clamp, which is negligible
    /// for the parameters used here).
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        match *self {
            Dist::Constant(ms) => ms,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Normal { mean, .. } => mean,
            Dist::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            Dist::Exponential { mean } => mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean(d: Dist, seed: u64, n: usize) -> f64 {
        let mut rng = DetRng::new(seed);
        (0..n).map(|_| d.sample_ms(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let mut rng = DetRng::new(0);
        let d = Dist::Constant(3.5);
        for _ in 0..10 {
            assert_eq!(d.sample_ms(&mut rng), 3.5);
        }
        assert_eq!(d.sample(&mut rng), SimDuration::from_micros(3500));
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = DetRng::new(1);
        let d = Dist::Uniform { lo: 1.0, hi: 2.0 };
        for _ in 0..1000 {
            let v = d.sample_ms(&mut rng);
            assert!((1.0..2.0).contains(&v));
        }
        // Degenerate bounds fall back to lo.
        let flat = Dist::Uniform { lo: 4.0, hi: 4.0 };
        assert_eq!(flat.sample_ms(&mut rng), 4.0);
    }

    #[test]
    fn sampled_means_match_theory() {
        for d in [
            Dist::Constant(2.0),
            Dist::Uniform { lo: 1.0, hi: 3.0 },
            Dist::Normal {
                mean: 2.0,
                std_dev: 0.2,
            },
            Dist::Exponential { mean: 2.0 },
            Dist::LogNormal {
                mu: 0.5,
                sigma: 0.3,
            },
        ] {
            let m = empirical_mean(d, 99, 30_000);
            let want = d.mean_ms();
            assert!(
                (m - want).abs() / want < 0.05,
                "{d:?}: empirical {m} vs theoretical {want}"
            );
        }
    }

    #[test]
    fn samples_are_never_negative() {
        let mut rng = DetRng::new(3);
        let d = Dist::Normal {
            mean: 0.1,
            std_dev: 10.0,
        };
        for _ in 0..1000 {
            assert!(d.sample_ms(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn jittered_constructor() {
        let d = Dist::jittered(10.0, 0.05);
        assert_eq!(
            d,
            Dist::Normal {
                mean: 10.0,
                std_dev: 0.5
            }
        );
    }
}
