//! # simnet — deterministic discrete-event simulation substrate
//!
//! Everything in the Tango reproduction that involves *time* runs on this
//! crate: a virtual nanosecond clock, an event queue with stable FIFO
//! ordering for simultaneous events, seeded random number generation,
//! parametric latency distributions, a latency/jitter link model, and
//! series recording for regenerating the paper's figures.
//!
//! Determinism is the design goal (per the smoltcp-style guides:
//! simplicity and robustness over cleverness). Every source of randomness
//! is an explicit [`rng::DetRng`] seeded by the experiment, so any run can
//! be reproduced bit-for-bit — which is what makes the statistical
//! inference experiments testable at all.
//!
//! ```
//! use simnet::prelude::*;
//!
//! let mut sim = Simulator::new();
//! sim.schedule_in(SimDuration::from_millis(5), "world");
//! sim.schedule_in(SimDuration::from_millis(1), "hello");
//! let (t1, e1) = sim.next_event().unwrap();
//! assert_eq!((t1.as_millis_f64(), e1), (1.0, "hello"));
//! let (t2, e2) = sim.next_event().unwrap();
//! assert_eq!((t2.as_millis_f64(), e2), (5.0, "world"));
//! ```

pub mod dist;
pub mod event;
pub mod link;
pub mod rng;
pub mod sim;
pub mod telemetry;
pub mod time;
pub mod trace;

/// Glob-import of the commonly used types.
pub mod prelude {
    pub use crate::dist::Dist;
    pub use crate::event::EventQueue;
    pub use crate::link::Link;
    pub use crate::rng::DetRng;
    pub use crate::sim::Simulator;
    pub use crate::telemetry::Telemetry;
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{Figure, Series, Summary};
}
