//! Measurement recording: labelled `(x, y)` series and summary
//! statistics, with CSV export.
//!
//! Every figure in the paper is a set of series; the bench harness
//! records into these and dumps CSV under `results/`.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One labelled series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Series {
    /// Legend label, e.g. `"fast path"`.
    pub label: String,
    /// Data points in insertion order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// An empty series with the given label.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if there are no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Summary statistics of the y values.
    #[must_use]
    pub fn summary(&self) -> Summary {
        Summary::of(self.points.iter().map(|&(_, y)| y))
    }
}

/// Summary statistics over a sample.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (linear interpolation).
    pub p50: f64,
    /// 90th percentile (linear interpolation).
    pub p90: f64,
    /// 95th percentile (linear interpolation).
    pub p95: f64,
    /// 99th percentile (linear interpolation) — the tail-latency figure
    /// experiment text artifacts report.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes statistics over an iterator of samples.
    pub fn of(values: impl IntoIterator<Item = f64>) -> Summary {
        let mut v: Vec<f64> = values.into_iter().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return Summary::default();
        }
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let n = v.len();
        let mean = v.iter().sum::<f64>() / n as f64;
        let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: v[0],
            p50: percentile(&v, 0.50),
            p90: percentile(&v, 0.90),
            p95: percentile(&v, 0.95),
            p99: percentile(&v, 0.99),
            max: v[n - 1],
        }
    }
}

/// Linear-interpolation percentile of a sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// A figure: several series sharing axes, exportable as CSV.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Figure {
    /// Figure title (e.g. `"fig2a: three-tier delay, OVS"`).
    pub title: String,
    /// Axis label for x.
    pub x_label: String,
    /// Axis label for y.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// An empty figure.
    #[must_use]
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Figure {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series and returns a mutable handle to it.
    pub fn series_mut(&mut self, label: impl Into<String>) -> &mut Series {
        self.series.push(Series::new(label));
        self.series.last_mut().expect("just pushed")
    }

    /// Long-form CSV: `series,x,y` rows with a header.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "series,{},{}", self.x_label, self.y_label);
        for s in &self.series {
            for &(x, y) in &s.points {
                let _ = writeln!(out, "{},{},{}", s.label, x, y);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of([1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
        assert!((s.std_dev - (2.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_and_single() {
        assert_eq!(Summary::of([]), Summary::default());
        let one = Summary::of([7.0]);
        assert_eq!(one.n, 1);
        assert_eq!(one.p50, 7.0);
        assert_eq!(one.p95, 7.0);
        assert_eq!(one.p90, 7.0);
        assert_eq!(one.p99, 7.0);
    }

    #[test]
    fn tail_quantiles_interpolate() {
        // 1..=100: p90 sits between the 90th and 91st order statistics,
        // p99 between the 99th and 100th.
        let s = Summary::of((1..=100).map(f64::from));
        assert!((s.p90 - 90.1).abs() < 1e-9);
        assert!((s.p99 - 99.01).abs() < 1e-9);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn summary_ignores_non_finite() {
        let s = Summary::of([1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.n, 2);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert!((percentile(&v, 0.5) - 25.0).abs() < 1e-12);
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 1.0), 40.0);
    }

    #[test]
    fn figure_csv_shape() {
        let mut fig = Figure::new("test", "flow id", "delay ms");
        let s = fig.series_mut("fast path");
        s.push(0.0, 1.5);
        s.push(1.0, 1.6);
        fig.series_mut("slow path").push(0.0, 4.5);
        let csv = fig.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "# test");
        assert_eq!(lines[1], "series,flow id,delay ms");
        assert_eq!(lines[2], "fast path,0,1.5");
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn series_summary() {
        let mut s = Series::new("x");
        assert!(s.is_empty());
        s.push(0.0, 2.0);
        s.push(1.0, 4.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.summary().mean, 3.0);
    }
}
