//! Loopback integration: the reactor's two server modes against real
//! sockets.
//!
//! The virtual-time test is the crate's core claim in miniature: the
//! same `ControlPath` call sequence against the in-memory testbed and
//! against `TcpFleet` → a virtual-time agent server must produce
//! *identical* completions — tokens, virtual timestamps, outcomes.

use ofwire::flow_match::FlowMatch;
use ofwire::flow_mod::FlowMod;
use ofwire::types::Dpid;
use simnet::link::Link;
use simnet::time::SimTime;
use std::collections::HashMap;
use switchsim::control::{ControlOp, ControlPath, OpOutcome};
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango_net::bench::{run_wire_bench, WireBenchConfig};
use tango_net::control::TcpFleet;
use tango_net::server::{AgentServer, ServerMode};

/// Drives the same mixed workload over any control path, following the
/// driver runner's discipline: two switches, one op in flight each, the
/// follow-up submitted at the previous op's `acked_at`. Returns the
/// per-switch completion streams (tokens and cross-switch delivery
/// order are transport bookkeeping, and `TcpFleet` documents that it
/// relaxes global delivery order — per-switch virtual timestamps and
/// outcomes are the contract).
fn drive<C: ControlPath>(cp: &mut C) -> Vec<(u64, SimTime, SimTime, OpOutcome)> {
    let (dp1, dp2) = (Dpid(1), Dpid(2));
    let t0 = cp.now();
    let a = cp.submit(
        dp1,
        ControlOp::FlowMod(FlowMod::add(FlowMatch::l3_for_id(7), 10)),
        t0,
    );
    let b = cp.submit(
        dp2,
        ControlOp::Batch(
            (0..5)
                .map(|i| FlowMod::add(FlowMatch::l3_for_id(i), 10))
                .collect(),
        ),
        t0,
    );
    let mut followup = HashMap::new();
    followup.insert(a.seq(), (dp1, ControlOp::Probe(FlowMatch::key_for_id(7))));
    followup.insert(b.seq(), (dp2, ControlOp::Echo(64)));
    let mut out = Vec::new();
    let mut horizon = t0;
    while let Some(c) = cp.next_completion() {
        horizon = horizon.max(c.acked_at);
        out.push((c.dpid.0, c.done_at, c.acked_at, c.outcome));
        if let Some((dpid, op)) = followup.remove(&c.token.seq()) {
            cp.submit(dpid, op, c.acked_at);
        }
    }
    cp.warp_to(horizon);
    // Per-switch virtual-time order: done instants are strictly
    // increasing within a switch (each op's arrival trails the previous
    // op's ack).
    out.sort_by_key(|&(dpid, done, _, _)| (dpid, done.0));
    out
}

#[test]
fn virtual_time_completions_match_the_testbed() {
    const SEED: u64 = 0x7a4e;
    let roster = vec![
        (Dpid(1), SwitchProfile::ovs()),
        (Dpid(2), SwitchProfile::vendor1()),
    ];
    let link = Link::control_channel(0.1);

    let mut tb = Testbed::new(SEED);
    for (dpid, profile) in &roster {
        tb.attach(*dpid, profile.clone(), link);
    }
    let expected = drive(&mut tb);

    let server = AgentServer::spawn(SEED, roster, ServerMode::Virtual { link })
        .expect("loopback server spawns");
    let mut fleet =
        TcpFleet::connect(server.addr(), &[Dpid(1), Dpid(2)]).expect("loopback fleet connects");
    let actual = drive(&mut fleet);
    assert_eq!(fleet.now(), tb.now(), "final clocks agree");
    drop(fleet);
    let stats = server.shutdown().expect("server exits cleanly");

    assert_eq!(
        actual, expected,
        "wire completions diverge from the testbed"
    );
    assert_eq!(stats.accepted, 2);
    assert_eq!(stats.ops, 4);
    assert_eq!(stats.errors, 0);
}

#[test]
fn realtime_bench_smoke() {
    let roster = (1..=2)
        .map(|i| (Dpid(i), SwitchProfile::ovs()))
        .collect::<Vec<_>>();
    let server =
        AgentServer::spawn(1, roster, ServerMode::Realtime).expect("loopback server spawns");
    let cfg = WireBenchConfig::new(2, 64, 16, 500);
    let result = run_wire_bench(server.addr(), cfg).expect("bench runs");
    let stats = server.shutdown().expect("server exits cleanly");

    assert_eq!(result.total_flow_mods, 1000);
    assert_eq!(result.errors, 0);
    assert_eq!(result.ack_latency_ms.n, 1000);
    assert!(result.flow_mods_per_sec > 0.0);
    assert!(result.ack_latency_ms.p99 >= result.ack_latency_ms.p50);
    assert_eq!(stats.accepted, 2);
    assert_eq!(stats.errors, 0);
}
