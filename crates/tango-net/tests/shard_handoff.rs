//! Edge cases at the front door: connections that die, lie, or retry
//! during the accept → handshake → shard-handoff path.
//!
//! The sharded server's only cross-thread state is the accept-time
//! handoff and one claim flag per roster slot, so these are exactly the
//! places a race or a leaked claim would live: a peer that vanishes
//! mid-hello, a hello for a switch someone else already owns, and a
//! switch that disconnects and comes back (which must land on the same
//! shard, and must find its claim released).

use ofwire::message::Message;
use ofwire::types::{Dpid, Xid};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use switchsim::profiles::SwitchProfile;
use tango_net::server::{shard_of, AgentServer, ServerConfig, ServerMode};
use tango_net::vt::VtMsg;

fn roster(n: u64) -> Vec<(Dpid, SwitchProfile)> {
    (1..=n).map(|i| (Dpid(i), SwitchProfile::ovs())).collect()
}

fn hello_frame(dpid: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    VtMsg::Hello { dpid }
        .to_message()
        .encode_frame_into(Xid(0), &mut buf);
    buf
}

/// Connects, sends the hello, and proves the binding end-to-end by
/// running one barrier round-trip through the bound agent.
fn bind_and_barrier(addr: std::net::SocketAddr, dpid: u64) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&hello_frame(dpid)).expect("send hello");
    let mut frame = Vec::new();
    Message::BarrierRequest.encode_frame_into(Xid(7), &mut frame);
    stream.write_all(&frame).expect("send barrier");
    let mut reply = vec![0u8; 64];
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set timeout");
    let n = stream.read(&mut reply).expect("read barrier reply");
    let (header, msg) = Message::from_bytes(&reply[..n]).expect("parse barrier reply");
    assert_eq!(header.xid, Xid(7));
    assert!(matches!(msg, Message::BarrierReply));
    stream
}

/// Reads until EOF or reset, with a timeout; returns whether the peer
/// closed the connection.
fn peer_closed(stream: &mut TcpStream) -> bool {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set timeout");
    let mut buf = [0u8; 64];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return true,
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::ConnectionReset
                    || e.kind() == std::io::ErrorKind::BrokenPipe =>
            {
                return true
            }
            Err(_) => return false,
        }
    }
}

#[test]
fn eof_mid_handshake_leaves_the_slot_bindable() {
    let server = AgentServer::spawn_with(
        1,
        roster(2),
        ServerMode::Realtime,
        ServerConfig {
            shards: 2,
            telemetry: false,
        },
    )
    .expect("server spawns");
    // An anchor connection keeps the server from deciding the fleet is
    // done while the torn connection below comes and goes.
    let anchor = bind_and_barrier(server.addr(), 1);

    // A peer that sends half a hello frame and vanishes. Its bytes are
    // a torn frame, not a protocol violation — and since the claim is
    // only taken on a *complete* hello, nothing is left to leak.
    let hello = hello_frame(2);
    let mut torn = TcpStream::connect(server.addr()).expect("connect");
    torn.write_all(&hello[..hello.len() / 2])
        .expect("half hello");
    drop(torn);

    // The same switch connects again and binds successfully.
    let rebound = bind_and_barrier(server.addr(), 2);

    drop(rebound);
    drop(anchor);
    let stats = server.shutdown().expect("server exits");
    assert_eq!(stats.accepted, 3);
    assert_eq!(stats.errors, 0, "a mid-handshake EOF is not an error");
}

#[test]
fn duplicate_dpid_claim_is_rejected_without_disturbing_the_owner() {
    let server = AgentServer::spawn_with(
        1,
        roster(1),
        ServerMode::Realtime,
        ServerConfig {
            shards: 2,
            telemetry: false,
        },
    )
    .expect("server spawns");
    let owner = bind_and_barrier(server.addr(), 1);

    // A second hello for the same dpid while the first is live: the
    // front door refuses the claim and drops the impostor.
    let mut imp = TcpStream::connect(server.addr()).expect("connect");
    imp.write_all(&hello_frame(1)).expect("send dup hello");
    assert!(peer_closed(&mut imp), "duplicate claim must be dropped");

    // The owner is untouched: another barrier still round-trips.
    let mut owner = owner;
    let mut frame = Vec::new();
    Message::BarrierRequest.encode_frame_into(Xid(9), &mut frame);
    owner.write_all(&frame).expect("owner still writable");
    let mut reply = vec![0u8; 64];
    let n = owner.read(&mut reply).expect("owner still served");
    let (header, msg) = Message::from_bytes(&reply[..n]).expect("parse reply");
    assert_eq!(header.xid, Xid(9));
    assert!(matches!(msg, Message::BarrierReply));

    drop(owner);
    let stats = server.shutdown().expect("server exits");
    assert_eq!(stats.errors, 1, "the duplicate claim is the only error");
}

#[test]
fn garbage_handshake_is_an_error_but_not_fatal() {
    let server = AgentServer::spawn_with(
        1,
        roster(1),
        ServerMode::Realtime,
        ServerConfig {
            shards: 1,
            telemetry: false,
        },
    )
    .expect("server spawns");
    let anchor = bind_and_barrier(server.addr(), 1);

    // A peer whose first frame is not a vendor hello (a bare barrier
    // request): protocol violation, connection dropped.
    let mut rogue = TcpStream::connect(server.addr()).expect("connect");
    let mut frame = Vec::new();
    Message::BarrierRequest.encode_frame_into(Xid(1), &mut frame);
    rogue.write_all(&frame).expect("send rogue frame");
    assert!(peer_closed(&mut rogue), "rogue handshake must be dropped");

    drop(anchor);
    let stats = server.shutdown().expect("server exits");
    assert_eq!(stats.errors, 1);
}

#[test]
fn reconnect_lands_on_the_same_shard() {
    const SHARDS: usize = 4;
    const SWITCHES: u64 = 8;
    let server = AgentServer::spawn_with(
        1,
        roster(SWITCHES),
        ServerMode::Realtime,
        ServerConfig {
            shards: SHARDS,
            telemetry: false,
        },
    )
    .expect("server spawns");

    // Every switch binds, proves liveness, disconnects, and binds
    // again. The claim release must win the race with the reconnect,
    // and the pure partition must send the second connection to the
    // shard that served the first. One switch stays connected for the
    // whole test so the server never sees an all-closed fleet and
    // exits early.
    let anchor = bind_and_barrier(server.addr(), SWITCHES);
    for round in 0..2 {
        for dpid in 1..SWITCHES {
            let deadline = Instant::now() + Duration::from_secs(10);
            // The previous round's claim is released by the shard when
            // it observes the close — retry the bind until it does.
            loop {
                let mut stream = TcpStream::connect(server.addr()).expect("connect");
                stream.write_all(&hello_frame(dpid)).expect("send hello");
                let mut frame = Vec::new();
                Message::BarrierRequest.encode_frame_into(Xid(3), &mut frame);
                stream.write_all(&frame).expect("send barrier");
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .expect("set timeout");
                let mut reply = vec![0u8; 64];
                match stream.read(&mut reply) {
                    Ok(n) if n > 0 => break,
                    _ if Instant::now() < deadline => continue,
                    other => panic!("bind for dpid {dpid} round {round} failed: {other:?}"),
                }
            }
        }
    }
    drop(anchor);

    let stats = server.shutdown().expect("server exits");
    // Each shard served exactly twice the connections the partition
    // function assigns it (the anchor bound once) — i.e. every
    // reconnect landed where the first connection did. Rejected
    // duplicate-claim retries during the release race never bound, so
    // they don't show up in per-shard conns (only in accepted/errors).
    let mut expected = vec![0usize; SHARDS];
    for dpid in 1..SWITCHES {
        expected[shard_of(dpid, SHARDS)] += 2;
    }
    expected[shard_of(SWITCHES, SHARDS)] += 1;
    let served: Vec<usize> = stats.shards.iter().map(|s| s.conns).collect();
    assert_eq!(served, expected);
    assert!(
        expected.iter().filter(|&&c| c > 0).count() >= 2,
        "the roster must span multiple shards"
    );
}
