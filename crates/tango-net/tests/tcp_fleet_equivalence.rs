//! End-to-end equivalence over the *sharded* wire: Tango inference
//! through a multi-shard [`AgentServer`] produces a [`TangoDb`] that is
//! byte-identical to the one the in-memory testbed produces.
//!
//! This is the strongest correctness claim the transport can make. The
//! whole virtual-time side channel exists so that moving the control
//! plane onto real sockets changes *nothing* observable: same probe
//! decisions, same virtual timestamps, same inferred properties, same
//! serialized knowledge base. Sharding the server must preserve that —
//! the partition moves connections across reactor threads, but every
//! per-switch stream (datapath seed, link-latency RNG, timeline) is
//! keyed by roster slot, not by which thread serves it.

use ofwire::types::Dpid;
use simnet::link::Link;
use switchsim::control::ControlPath;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::db::TangoDb;
use tango::fleet::{run_inference, FleetJob};
use tango::infer_size::SizeProbeConfig;
use tango::pattern::RuleKind;
use tango_net::control::TcpFleet;
use tango_net::server::{shard_of, AgentServer, ServerConfig, ServerMode};

const SEED: u64 = 0x7a60;
/// Dpids 1..=3 land on shards 0, 3 and 2 of 4 — the equivalence run
/// genuinely crosses shard threads instead of degenerating to one.
const SHARDS: usize = 4;

fn roster() -> Vec<(Dpid, SwitchProfile)> {
    vec![
        (Dpid(1), SwitchProfile::ovs()),
        (Dpid(2), SwitchProfile::vendor1()),
        (Dpid(3), SwitchProfile::vendor3()),
    ]
}

fn size_config(dpid: Dpid) -> SizeProbeConfig {
    SizeProbeConfig {
        // Bounds every profile here (vendor3's TCAM is well under it;
        // OVS never rejects and stops at the cap) while keeping the
        // debug-profile runtime modest.
        max_flows: 1500,
        trials_per_level: 24,
        seed: 0x5eed ^ dpid.0,
        ..SizeProbeConfig::default()
    }
}

fn jobs() -> Vec<FleetJob> {
    roster()
        .iter()
        .map(|(d, _)| FleetJob::size(*d, RuleKind::L3, size_config(*d)))
        .collect()
}

/// Runs fleet inference over any control path and serializes what it
/// learned.
fn inferred_db_json<C: ControlPath>(cp: &mut C) -> String {
    let jobs = jobs();
    let outcomes = run_inference(cp, &jobs).expect("fleet inference completes");
    let mut db = TangoDb::new();
    db.ingest_fleet(&jobs, &outcomes);
    db.to_json()
}

#[test]
fn tcp_fleet_equivalence() {
    let link = Link::control_channel(0.1);

    // In-memory baseline: the testbed attaches the same roster in the
    // same order, so per-switch streams derive identically.
    let mut tb = Testbed::new(SEED);
    for (dpid, profile) in roster() {
        tb.attach(dpid, profile, link);
    }
    let expected = inferred_db_json(&mut tb);

    // The same inference over loopback TCP against a sharded server.
    let server = AgentServer::spawn_with(
        SEED,
        roster(),
        ServerMode::Virtual { link },
        ServerConfig {
            shards: SHARDS,
            telemetry: false,
        },
    )
    .expect("sharded server spawns");
    let dpids: Vec<Dpid> = roster().iter().map(|(d, _)| *d).collect();
    let mut fleet = TcpFleet::connect(server.addr(), &dpids).expect("fleet connects");
    let actual = inferred_db_json(&mut fleet);
    drop(fleet);
    let stats = server.shutdown().expect("server exits cleanly");

    assert_eq!(
        actual, expected,
        "TangoDb bytes diverge between in-memory and sharded-wire inference"
    );
    assert_eq!(stats.accepted, dpids.len());
    assert_eq!(stats.errors, 0);

    // The partition actually spread the fleet: each shard served
    // exactly the connections the pure partition function assigns it.
    let mut expected_conns = vec![0usize; SHARDS];
    for d in &dpids {
        expected_conns[shard_of(d.0, SHARDS)] += 1;
    }
    let served: Vec<usize> = stats.shards.iter().map(|s| s.conns).collect();
    assert_eq!(served, expected_conns);
    assert!(
        expected_conns.iter().filter(|&&c| c > 0).count() >= 2,
        "roster must span multiple shards for this test to mean anything"
    );
}
