//! Property tests for the segmented [`OutBuf`] against a naive
//! `Vec<u8>` oracle, and for the [`Watermark`] hysteresis against its
//! two-state model.
//!
//! `OutBuf` is the write side of every connection in the sharded
//! reactor: frames append into recycled fixed-capacity segments and a
//! flush hands the kernel everything at once via `write_vectored`,
//! advancing a drain cursor through partially-written segments. The
//! oracle is the structure it replaced — one flat `Vec<u8>` plus a
//! cursor — which is trivially correct but memmoves on compaction. Any
//! divergence in delivered bytes, order, or accounting is a bug in the
//! segment bookkeeping (roll, recycle, cursor advance), which is
//! exactly the code a partial `write_vectored` return exercises.

use proptest::prelude::*;
use std::io::{self, Write};
use tango_net::reactor::{OutBuf, Watermark};

/// A sink that accepts at most `budget` bytes, then returns
/// `WouldBlock` — the shape of a congested non-blocking socket. The
/// default `write_vectored` forwards to `write` with the first
/// non-empty slice, so short accepts land mid-segment and `OutBuf`
/// must resume from its drain cursor.
struct Throttle {
    got: Vec<u8>,
    budget: usize,
}

impl Write for Throttle {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.budget == 0 {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
        }
        let n = buf.len().min(self.budget);
        self.got.extend_from_slice(&buf[..n]);
        self.budget -= n;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

proptest! {
    /// Interleaved appends and throttled flushes: after every step the
    /// buffer's accounting matches the oracle (`pending` = appended
    /// minus delivered) and the sink holds exactly the oracle prefix —
    /// no byte lost, duplicated, or reordered across segment rolls,
    /// pool recycling, or mid-segment cursor stops.
    #[test]
    fn outbuf_matches_vec_oracle(
        ops in proptest::collection::vec((0u8..2, 1usize..5000), 1..40),
    ) {
        let mut out = OutBuf::new();
        // The oracle: every byte ever appended, in order, plus a drain
        // cursor counting bytes the sink has accepted.
        let mut oracle: Vec<u8> = Vec::new();
        let mut sent = 0usize;
        let mut sink = Throttle { got: Vec::new(), budget: 0 };
        let mut pattern = 0u8;
        for &(kind, amount) in &ops {
            if kind == 0 {
                // Append `amount` patterned bytes through tail(),
                // chunked at an odd stride so appends straddle the
                // segment-roll boundary at irregular offsets.
                let mut remaining = amount;
                while remaining > 0 {
                    let chunk = remaining.min(997);
                    let tail = out.tail();
                    for _ in 0..chunk {
                        tail.push(pattern);
                        oracle.push(pattern);
                        pattern = pattern.wrapping_add(1);
                    }
                    remaining -= chunk;
                }
            } else {
                sink.budget = amount;
                let before = out.pending();
                let moved = out.write_to(&mut sink).unwrap();
                // The sink accepts up to its budget per call and
                // write_to loops until WouldBlock, so the drain moves
                // exactly min(pending, budget) — cursor progress is
                // total, not best-effort.
                prop_assert_eq!(moved, before.min(amount));
                sent += moved;
            }
            prop_assert_eq!(out.pending(), oracle.len() - sent);
            prop_assert_eq!(&sink.got[..], &oracle[..sent]);
        }
        // A final unthrottled flush drains everything that remains.
        sink.budget = usize::MAX;
        out.write_to(&mut sink).unwrap();
        prop_assert_eq!(out.pending(), 0);
        prop_assert_eq!(sink.got, oracle);
    }

    /// An untouched `tail()` (a caller that reserved the append end
    /// but encoded nothing) never corrupts accounting or output.
    #[test]
    fn outbuf_unused_tail_is_harmless(
        appends in proptest::collection::vec(0usize..200, 1..30),
    ) {
        let mut out = OutBuf::new();
        let mut oracle = Vec::new();
        for (i, &n) in appends.iter().enumerate() {
            let tail = out.tail();
            for _ in 0..n {
                tail.push(i as u8);
                oracle.push(i as u8);
            }
            prop_assert_eq!(out.pending(), oracle.len());
        }
        let mut sink = Throttle { got: Vec::new(), budget: usize::MAX };
        out.write_to(&mut sink).unwrap();
        prop_assert_eq!(sink.got, oracle);
        prop_assert_eq!(out.pending(), 0);
    }

    /// The watermark hysteresis against its two-state model: reads
    /// pause at `pending >= high` (inclusive), stay paused anywhere in
    /// the [low, high) band, and resume only below `low` (exclusive).
    /// The band is the point — a level hovering at one boundary must
    /// not toggle the read state sweep to sweep.
    #[test]
    fn watermark_tracks_hysteresis_model(
        low in 1usize..500,
        gap in 1usize..500,
        ops in proptest::collection::vec((0u8..2, 0usize..1200), 1..80),
    ) {
        let high = low + gap;
        let mut wm = Watermark::new(high, low);
        let mut paused = false;
        for &(kind, level) in &ops {
            if kind == 0 {
                // Pre-read check at this pending level.
                if level >= high {
                    paused = true;
                }
                prop_assert_eq!(wm.allow_read(level), !paused);
            } else {
                // Post-flush report at this pending level.
                wm.drained(level);
                if paused && level < low {
                    paused = false;
                }
            }
            prop_assert_eq!(wm.is_paused(), paused);
        }
    }
}
