//! The pipelined flow-mod load generator behind the `wire_bench`
//! experiment arm.
//!
//! One single-threaded client drives N connections against a realtime
//! [`AgentServer`](crate::server::AgentServer), keeping a bounded
//! window of unacknowledged flow-mods in flight per connection and
//! fencing them with coalesced barriers (one `barrier_request` per
//! `barrier_every` flow-mods, never one per op). Ack latency for a
//! flow-mod is measured to the *covering barrier's* reply — OpenFlow
//! switches do not acknowledge successful flow-mods individually, so
//! the fence is what a real controller waits on.
//!
//! The flow-mod stream alternates 1024-id blocks of `Add` and
//! `DeleteStrict`, so the switch's tables stay bounded no matter how
//! many operations a sweep pushes — throughput is measured against a
//! steady-state table, not an ever-filling one.

use crate::reactor::{NbConn, Pacer, READ_CHUNK};
use ofwire::action::Action;
use ofwire::codec::Framer;
use ofwire::flow_match::FlowMatch;
use ofwire::flow_mod::FlowMod;
use ofwire::message::Message;
use ofwire::types::{PortNo, Xid};
use simnet::trace::Summary;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// Flow-ids cycle through blocks of this many adds, then the matching
/// strict deletes, keeping the table bounded.
const ID_BLOCK: u32 = 1024;

/// One `wire_bench` cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireBenchConfig {
    /// Concurrent switch connections.
    pub connections: usize,
    /// Max unacknowledged flow-mods in flight per connection.
    pub window: usize,
    /// Coalescing factor: one barrier fences this many flow-mods.
    pub barrier_every: usize,
    /// Flow-mods each connection sends in total.
    pub ops_per_conn: usize,
}

/// What one cell measured.
#[derive(Debug, Clone)]
pub struct WireBenchResult {
    /// The cell's configuration.
    pub config: WireBenchConfig,
    /// Flow-mods acknowledged across all connections.
    pub total_flow_mods: u64,
    /// Wall-clock duration of the run, seconds.
    pub elapsed_secs: f64,
    /// Sustained throughput: `total_flow_mods / elapsed_secs`.
    pub flow_mods_per_sec: f64,
    /// Per-flow-mod ack latency (to the covering barrier reply), ms.
    pub ack_latency_ms: Summary,
    /// Error replies observed (0 in a healthy run — the id rotation
    /// never fills a table).
    pub errors: u64,
}

/// Client-side state of one benchmark connection.
struct BenchConn {
    conn: NbConn,
    framer: Framer,
    /// Flow-mods encoded so far.
    sent: usize,
    /// Flow-mods covered by a returned fence.
    acked: usize,
    /// Flow-mods sent since the last fence.
    since_fence: usize,
    /// Cumulative `sent` at each outstanding fence, FIFO.
    fences: VecDeque<usize>,
    /// Encode instant of each unacknowledged flow-mod, FIFO.
    send_times: VecDeque<Instant>,
    next_xid: u32,
    errors: u64,
}

impl BenchConn {
    fn xid(&mut self) -> Xid {
        self.next_xid += 1;
        Xid(self.next_xid)
    }

    /// Encodes the `i`-th flow-mod of the rotation: blocks of adds,
    /// then the matching strict deletes.
    fn encode_flow_mod(&mut self, i: usize) {
        let block = (i as u32) / ID_BLOCK;
        let id = (i as u32) % ID_BLOCK;
        let fm = if block.is_multiple_of(2) {
            FlowMod::add(FlowMatch::l3_for_id(id), 10).with_action(Action::Output {
                port: PortNo(1),
                max_len: 0,
            })
        } else {
            FlowMod::delete_strict(FlowMatch::l3_for_id(id), 10)
        };
        let xid = self.xid();
        Message::FlowMod(fm).encode_frame_into(xid, self.conn.out.tail());
        self.send_times.push_back(Instant::now());
        self.sent += 1;
        self.since_fence += 1;
    }

    /// Fences everything sent since the last fence.
    fn encode_fence(&mut self) {
        debug_assert!(self.since_fence > 0);
        let xid = self.xid();
        Message::BarrierRequest.encode_frame_into(xid, self.conn.out.tail());
        self.fences.push_back(self.sent);
        self.since_fence = 0;
    }
}

/// Runs one benchmark cell against a realtime agent server at `addr`.
///
/// The server's roster must contain dpids `1..=cfg.connections` (see
/// the `wire_bench` experiment arm, which spawns it that way).
pub fn run_wire_bench(addr: SocketAddr, cfg: WireBenchConfig) -> io::Result<WireBenchResult> {
    use crate::vt::VtMsg;
    let mut conns = Vec::with_capacity(cfg.connections);
    for i in 0..cfg.connections {
        let mut conn = NbConn::new(TcpStream::connect(addr)?)?;
        VtMsg::Hello {
            dpid: (i + 1) as u64,
        }
        .to_message()
        .encode_frame_into(Xid(0), conn.out.tail());
        conns.push(BenchConn {
            conn,
            framer: Framer::new(),
            sent: 0,
            acked: 0,
            since_fence: 0,
            fences: VecDeque::new(),
            send_times: VecDeque::new(),
            next_xid: 0,
            errors: 0,
        });
    }

    let total = cfg.ops_per_conn;
    let mut samples: Vec<f64> = Vec::with_capacity(cfg.connections * total);
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut pacer = Pacer::new();
    let started = Instant::now();
    loop {
        let mut all_done = true;
        let mut progress = false;
        for bc in &mut conns {
            // Top up the pipeline window, fencing every
            // `barrier_every` flow-mods.
            let before = bc.sent;
            while bc.sent < total && bc.sent - bc.acked < cfg.window {
                bc.encode_flow_mod(bc.sent);
                if bc.since_fence >= cfg.barrier_every {
                    bc.encode_fence();
                }
            }
            // The window is full (or the stream is finished): fence the
            // tail so its acks can come back.
            if bc.since_fence > 0 {
                bc.encode_fence();
            }
            progress |= bc.sent > before;
            progress |= bc.conn.flush()? > 0;
            let n = bc.conn.read_into(&mut scratch)?;
            if bc.conn.is_closed() {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "agent server closed a benchmark connection",
                ));
            }
            if n > 0 {
                progress = true;
                let mut input = &scratch[..n];
                while let Some((_, msg)) = bc
                    .framer
                    .next_message_from(&mut input)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
                {
                    match msg {
                        Message::BarrierReply => {
                            let covered = bc
                                .fences
                                .pop_front()
                                .expect("fence replies arrive in order");
                            let now = Instant::now();
                            while bc.acked < covered {
                                let t = bc.send_times.pop_front().expect("send time per flow-mod");
                                samples.push(now.duration_since(t).as_secs_f64() * 1e3);
                                bc.acked += 1;
                            }
                        }
                        Message::Error(_) => bc.errors += 1,
                        _ => {}
                    }
                }
            }
            all_done &= bc.acked == total;
        }
        if all_done {
            break;
        }
        if progress {
            pacer.progressed();
        } else {
            pacer.idle();
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let total_flow_mods = (cfg.connections * total) as u64;
    Ok(WireBenchResult {
        config: cfg,
        total_flow_mods,
        elapsed_secs: elapsed,
        flow_mods_per_sec: total_flow_mods as f64 / elapsed,
        ack_latency_ms: Summary::of(samples),
        errors: conns.iter().map(|c| c.errors).sum(),
    })
}
