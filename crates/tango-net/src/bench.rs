//! The pipelined flow-mod load generator behind the `wire_bench`
//! experiment arm.
//!
//! The client drives N connections against a realtime
//! [`AgentServer`](crate::server::AgentServer) (optionally from several
//! client threads, each owning a disjoint subset), keeping a bounded
//! window of unacknowledged flow-mods in flight per connection and
//! fencing them with coalesced barriers (one `barrier_request` per
//! fence interval, never one per op). Ack latency for a flow-mod is
//! measured to the *covering barrier's* reply — OpenFlow switches do
//! not acknowledge successful flow-mods individually, so the fence is
//! what a real controller waits on.
//!
//! Two mechanisms bound tail latency (the deep-window p99 cliff):
//!
//! * **In-flight byte cap** — besides the frame window, each connection
//!   stops encoding once [`WireBenchConfig::max_inflight_bytes`] of
//!   un-acked wire bytes are outstanding. Latency to a fence is queue
//!   depth over drain rate; capping *bytes* caps the queue the server
//!   (and both socket buffers) can build up, which a frame-count window
//!   alone does not once frames pile into kernel buffers.
//! * **Adaptive fencing** — the fence interval starts at
//!   [`WireBenchConfig::barrier_every`] and adapts AIMD-style to the
//!   measured ack latency against
//!   [`WireBenchConfig::target_ack_us`]: a fence that comes back over
//!   target halves the interval *and* the connection's private byte
//!   cap (multiplicative decrease), a fence under half the target
//!   restores them additively. Deep windows then converge to whatever
//!   in-flight depth the server can drain within the target.
//!
//! The flow-mod stream alternates 1024-id blocks of `Add` and
//! `DeleteStrict`, so the switch's tables stay bounded no matter how
//! many operations a sweep pushes — throughput is measured against a
//! steady-state table, not an ever-filling one.

use crate::reactor::{NbConn, Pacer, READ_CHUNK};
use ofwire::action::Action;
use ofwire::codec::Framer;
use ofwire::flow_match::FlowMatch;
use ofwire::flow_mod::FlowMod;
use ofwire::message::Message;
use ofwire::types::{PortNo, Xid};
use simnet::trace::Summary;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// Flow-ids cycle through blocks of this many adds, then the matching
/// strict deletes, keeping the table bounded.
const ID_BLOCK: u32 = 1024;

/// One `wire_bench` cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireBenchConfig {
    /// Concurrent switch connections.
    pub connections: usize,
    /// Max unacknowledged flow-mods in flight per connection.
    pub window: usize,
    /// Max fence interval: one barrier fences at most this many
    /// flow-mods (the adaptive controller only shrinks it).
    pub barrier_every: usize,
    /// Flow-mods each connection sends in total.
    pub ops_per_conn: usize,
    /// Max un-acked bytes in flight per connection; 0 disables the cap.
    pub max_inflight_bytes: usize,
    /// Ack-latency target in microseconds for the adaptive fence/byte
    /// controller; 0 disables adaptation.
    pub target_ack_us: u64,
    /// Client threads driving disjoint connection subsets.
    pub client_threads: usize,
}

impl WireBenchConfig {
    /// A cell with the latency controls at their defaults: a 16 KiB
    /// per-connection byte cap and a 10 ms ack target.
    #[must_use]
    pub fn new(
        connections: usize,
        window: usize,
        barrier_every: usize,
        ops_per_conn: usize,
    ) -> WireBenchConfig {
        WireBenchConfig {
            connections,
            window,
            barrier_every,
            ops_per_conn,
            max_inflight_bytes: 16 * 1024,
            target_ack_us: 10_000,
            client_threads: 1,
        }
    }
}

/// What one cell measured.
#[derive(Debug, Clone)]
pub struct WireBenchResult {
    /// The cell's configuration.
    pub config: WireBenchConfig,
    /// Flow-mods acknowledged across all connections.
    pub total_flow_mods: u64,
    /// Wall-clock duration of the run, seconds.
    pub elapsed_secs: f64,
    /// Sustained throughput: `total_flow_mods / elapsed_secs`.
    pub flow_mods_per_sec: f64,
    /// Per-flow-mod ack latency (to the covering barrier reply), ms.
    pub ack_latency_ms: Summary,
    /// Error replies observed (0 in a healthy run — the id rotation
    /// never fills a table).
    pub errors: u64,
}

/// Client-side state of one benchmark connection.
struct BenchConn {
    conn: NbConn,
    framer: Framer,
    /// Flow-mods encoded so far.
    sent: usize,
    /// Flow-mods covered by a returned fence.
    acked: usize,
    /// Flow-mods sent since the last fence.
    since_fence: usize,
    /// Cumulative `sent` at each outstanding fence, FIFO.
    fences: VecDeque<usize>,
    /// Encode instant and frame length of each unacknowledged
    /// flow-mod, FIFO.
    send_times: VecDeque<(Instant, u32)>,
    /// Un-acked wire bytes currently in flight.
    inflight_bytes: usize,
    /// Current fence interval (AIMD, in `[1, barrier_every]`).
    fence_interval: usize,
    /// Current byte cap (AIMD, in `[2 frames, max_inflight_bytes]`).
    byte_cap: usize,
    next_xid: u32,
    errors: u64,
}

impl BenchConn {
    fn xid(&mut self) -> Xid {
        self.next_xid += 1;
        Xid(self.next_xid)
    }

    /// Encodes the `i`-th flow-mod of the rotation: blocks of adds,
    /// then the matching strict deletes.
    fn encode_flow_mod(&mut self, i: usize) {
        let block = (i as u32) / ID_BLOCK;
        let id = (i as u32) % ID_BLOCK;
        let fm = if block.is_multiple_of(2) {
            FlowMod::add(FlowMatch::l3_for_id(id), 10).with_action(Action::Output {
                port: PortNo(1),
                max_len: 0,
            })
        } else {
            FlowMod::delete_strict(FlowMatch::l3_for_id(id), 10)
        };
        let xid = self.xid();
        let tail = self.conn.out.tail();
        let before = tail.len();
        Message::FlowMod(fm).encode_frame_into(xid, tail);
        let frame_len = (tail.len() - before) as u32;
        self.send_times.push_back((Instant::now(), frame_len));
        self.inflight_bytes += frame_len as usize;
        self.sent += 1;
        self.since_fence += 1;
    }

    /// Fences everything sent since the last fence.
    fn encode_fence(&mut self) {
        debug_assert!(self.since_fence > 0);
        let xid = self.xid();
        Message::BarrierRequest.encode_frame_into(xid, self.conn.out.tail());
        self.fences.push_back(self.sent);
        self.since_fence = 0;
    }

    /// Whether the windows allow encoding another flow-mod.
    fn can_send(&self, cfg: &WireBenchConfig) -> bool {
        self.sent < cfg.ops_per_conn
            && self.sent - self.acked < cfg.window
            && (cfg.max_inflight_bytes == 0 || self.inflight_bytes < self.byte_cap)
    }

    /// Feeds one fence's measured latency to the AIMD controller.
    ///
    /// The band is deliberately wide — shrink only above 2× target,
    /// grow only below it — because the measured latency has a floor
    /// (one client sweep + one server sweep) that no amount of window
    /// shrinking removes; a tight band would pin every connection at
    /// the minimum cap and collapse throughput whenever that floor
    /// sits near the target.
    fn adapt(&mut self, latency_us: u64, cfg: &WireBenchConfig) {
        if cfg.target_ack_us == 0 {
            return;
        }
        if latency_us > cfg.target_ack_us * 2 {
            // Never shrink fences below a quarter of the configured
            // interval: every barrier is a full server op, so a fence
            // per flow-mod would double the drain work exactly while
            // the server is behind. The byte cap owns depth control.
            self.fence_interval = (self.fence_interval / 2).max(cfg.barrier_every / 4).max(1);
            // A gentle 3/4 decrease: halving overshoots downward and the
            // additive recovery (one step per fence RTT) then spends
            // many round trips climbing back — the sawtooth's trough
            // costs more throughput than its crest costs latency.
            self.byte_cap = (self.byte_cap * 3 / 4).max(1024);
        } else if latency_us < cfg.target_ack_us {
            self.fence_interval = (self.fence_interval + 1).min(cfg.barrier_every.max(1));
            if cfg.max_inflight_bytes != 0 {
                self.byte_cap = (self.byte_cap + 1024).min(cfg.max_inflight_bytes);
            }
        }
    }
}

/// Drives the connection subset `dpids` (1-based switch ids) from one
/// thread; returns the latency samples (ms) and error count.
fn run_partition(
    addr: SocketAddr,
    cfg: &WireBenchConfig,
    dpids: &[u64],
) -> io::Result<(Vec<f64>, u64)> {
    use crate::vt::VtMsg;
    let mut conns = Vec::with_capacity(dpids.len());
    for &dpid in dpids {
        let mut conn = NbConn::new(TcpStream::connect(addr)?)?;
        VtMsg::Hello { dpid }
            .to_message()
            .encode_frame_into(Xid(0), conn.out.tail());
        conns.push(BenchConn {
            conn,
            framer: Framer::new(),
            sent: 0,
            acked: 0,
            since_fence: 0,
            fences: VecDeque::new(),
            send_times: VecDeque::new(),
            inflight_bytes: 0,
            fence_interval: cfg.barrier_every.max(1),
            // Slow-start: with adaptation on, begin well under the cap
            // and grow additively — launching every connection at the
            // full cap floods the pipe before the first fence returns,
            // and that transient alone is deep enough to own the p99.
            byte_cap: if cfg.max_inflight_bytes == 0 {
                usize::MAX
            } else if cfg.target_ack_us == 0 {
                cfg.max_inflight_bytes
            } else {
                cfg.max_inflight_bytes.min(2048)
            },
            next_xid: 0,
            errors: 0,
        });
    }

    let total = cfg.ops_per_conn;
    let mut samples: Vec<f64> = Vec::with_capacity(dpids.len() * total);
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut pacer = Pacer::new();
    loop {
        let mut all_done = true;
        let mut progress = false;
        let mut in_flight = false;
        for bc in &mut conns {
            // Top up the pipeline window, fencing every
            // `fence_interval` flow-mods.
            let before = bc.sent;
            while bc.can_send(cfg) {
                bc.encode_flow_mod(bc.sent);
                if bc.since_fence >= bc.fence_interval {
                    bc.encode_fence();
                }
            }
            // The window is full (or the stream is finished): fence the
            // tail so its acks can come back.
            if bc.since_fence > 0 {
                bc.encode_fence();
            }
            progress |= bc.sent > before;
            progress |= bc.conn.flush()? > 0;
            let n = bc.conn.read_into(&mut scratch)?;
            if bc.conn.is_closed() {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "agent server closed a benchmark connection",
                ));
            }
            if n > 0 {
                progress = true;
                let mut input = &scratch[..n];
                while let Some((_, msg)) = bc
                    .framer
                    .next_message_from(&mut input)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
                {
                    match msg {
                        Message::BarrierReply => {
                            let covered = bc
                                .fences
                                .pop_front()
                                .expect("fence replies arrive in order");
                            let now = Instant::now();
                            let mut worst_us = 0u64;
                            while bc.acked < covered {
                                let (t, frame_len) =
                                    bc.send_times.pop_front().expect("send time per flow-mod");
                                let waited = now.duration_since(t);
                                worst_us = worst_us.max(waited.as_micros() as u64);
                                samples.push(waited.as_secs_f64() * 1e3);
                                bc.inflight_bytes -= frame_len as usize;
                                bc.acked += 1;
                            }
                            bc.adapt(worst_us, cfg);
                        }
                        Message::Error(_) => bc.errors += 1,
                        _ => {}
                    }
                }
            }
            all_done &= bc.acked == total;
            in_flight |= bc.acked < bc.sent;
        }
        if all_done {
            break;
        }
        if progress {
            pacer.progressed();
        } else {
            pacer.idle(in_flight);
        }
    }
    Ok((samples, conns.iter().map(|c| c.errors).sum()))
}

/// Runs one benchmark cell against a realtime agent server at `addr`.
///
/// The server's roster must contain dpids `1..=cfg.connections` (see
/// the `wire_bench` experiment arm, which spawns it that way). With
/// `client_threads > 1` the connections are split contiguously across
/// that many generator threads.
pub fn run_wire_bench(addr: SocketAddr, cfg: WireBenchConfig) -> io::Result<WireBenchResult> {
    let threads = cfg.client_threads.clamp(1, cfg.connections.max(1));
    let dpids: Vec<u64> = (1..=cfg.connections as u64).collect();
    let chunk = cfg.connections.div_ceil(threads);
    let started = Instant::now();
    let mut merged: Vec<(Vec<f64>, u64)> = Vec::with_capacity(threads);
    if threads == 1 {
        merged.push(run_partition(addr, &cfg, &dpids)?);
    } else {
        let results: Vec<io::Result<(Vec<f64>, u64)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = dpids
                .chunks(chunk)
                .map(|part| scope.spawn(move || run_partition(addr, &cfg, part)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("bench thread panicked"))
                .collect()
        });
        for r in results {
            merged.push(r?);
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let total_flow_mods = (cfg.connections * cfg.ops_per_conn) as u64;
    let mut samples = Vec::new();
    let mut errors = 0;
    for (s, e) in merged {
        samples.extend(s);
        errors += e;
    }
    Ok(WireBenchResult {
        config: cfg,
        total_flow_mods,
        elapsed_secs: elapsed,
        flow_mods_per_sec: total_flow_mods as f64 / elapsed,
        ack_latency_ms: Summary::of(samples),
        errors,
    })
}
