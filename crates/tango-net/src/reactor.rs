//! The transport core: non-blocking connections with bounded, reused
//! buffers.
//!
//! There is no epoll here by design (the workspace is dependency-free):
//! the reactor is a readiness *scan* loop — every iteration tries to
//! flush and read each live connection, and a [`Pacer`] backs off when
//! a full sweep makes no progress. At the connection counts this crate
//! targets (hundreds to ~1k on loopback) the scan is cheap relative to
//! the traffic it moves, and the hot path stays allocation-free:
//! sockets read into one shared scratch buffer, writes drain a reused
//! per-connection [`OutBuf`].
//!
//! Backpressure is explicit and local: a connection whose `OutBuf`
//! crosses its high watermark is not read again until the buffer drains
//! below the low watermark ([`Watermark`] owns that hysteresis), so a
//! slow peer stalls its own connection instead of growing an unbounded
//! queue.
//!
//! [`OutBuf`] is *segmented*: output accumulates in fixed-capacity
//! chunks recycled through a small pool, and a flush hands the kernel
//! every segment at once via `write_vectored`. Compared to one growing
//! `Vec`, a partially-drained buffer never pays a compaction `memmove`
//! — a drained segment just returns to the pool — and a deep pipeline
//! window still leaves the socket in a single syscall per sweep.

use std::io::{self, IoSlice, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Default high watermark: stop reading a connection whose un-flushed
/// output exceeds this.
pub const HIGH_WATER: usize = 256 * 1024;
/// Default low watermark: resume reading once un-flushed output drains
/// below this.
pub const LOW_WATER: usize = 64 * 1024;
/// Size of the shared read scratch each reactor loop allocates once.
pub const READ_CHUNK: usize = 256 * 1024;
/// Capacity of one [`OutBuf`] segment. A frame append that would grow
/// the tail segment past this rolls to a fresh segment instead, so
/// segments stay cache-friendly and recycle cleanly.
pub const SEG_CAP: usize = 64 * 1024;
/// Segments kept for reuse per connection once drained.
const POOL_MAX: usize = 8;
/// Most segments offered to one `write_vectored` call (conservative
/// portable IOV budget; a full default watermark window fits).
const MAX_IOV: usize = 8;

/// Read/write hysteresis: pause a connection's reads when its pending
/// output crosses `high`, resume once it drains below `low`.
///
/// Extracted from the connection so the policy is testable on its own:
/// the two-threshold gap is what prevents a connection hovering at one
/// boundary from toggling its read state every sweep.
#[derive(Debug, Clone, Copy)]
pub struct Watermark {
    /// Pause threshold (inclusive).
    pub high: usize,
    /// Resume threshold (exclusive).
    pub low: usize,
    paused: bool,
}

impl Watermark {
    /// A watermark pair; `low` should be below `high`.
    #[must_use]
    pub fn new(high: usize, low: usize) -> Watermark {
        Watermark {
            high,
            low,
            paused: false,
        }
    }

    /// Reports the pending output level before a read; returns whether
    /// reading is currently allowed.
    pub fn allow_read(&mut self, pending: usize) -> bool {
        if pending >= self.high {
            self.paused = true;
        }
        !self.paused
    }

    /// Reports the pending output level after a flush, possibly lifting
    /// the pause.
    pub fn drained(&mut self, pending: usize) {
        if self.paused && pending < self.low {
            self.paused = false;
        }
    }

    /// Whether reads are currently paused.
    #[must_use]
    pub fn is_paused(&self) -> bool {
        self.paused
    }
}

impl Default for Watermark {
    fn default() -> Watermark {
        Watermark::new(HIGH_WATER, LOW_WATER)
    }
}

/// A reused, segmented outbound byte buffer.
///
/// Appending encodes frames into the tail segment (rolling to a pooled
/// fresh segment at [`SEG_CAP`]); flushing offers every segment to the
/// socket in one `write_vectored` call and recycles fully-drained
/// segments. Steady state allocates nothing per message and never
/// memmoves surviving bytes.
#[derive(Debug, Default)]
pub struct OutBuf {
    /// Live segments, oldest first; `segs[0]` is partially drained.
    segs: std::collections::VecDeque<Vec<u8>>,
    /// Bytes of `segs[0]` already written to the socket.
    cursor: usize,
    /// Drained segments awaiting reuse.
    pool: Vec<Vec<u8>>,
}

impl OutBuf {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> OutBuf {
        OutBuf::default()
    }

    /// The append end; encode one frame directly into this per call.
    /// Each call may roll to a new segment, so callers must not assume
    /// consecutive calls return the same `Vec`.
    pub fn tail(&mut self) -> &mut Vec<u8> {
        if self.segs.back().is_none_or(|b| b.len() >= SEG_CAP) {
            let seg = self
                .pool
                .pop()
                .unwrap_or_else(|| Vec::with_capacity(SEG_CAP));
            self.segs.push_back(seg);
        }
        self.segs.back_mut().expect("segment just ensured")
    }

    /// Bytes accepted but not yet written to the socket. O(#segments),
    /// and the watermark bounds the segment count to a handful.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.segs.iter().map(Vec::len).sum::<usize>() - self.cursor
    }

    /// Marks `n` bytes written: advances the cursor and recycles
    /// fully-drained segments.
    fn advance(&mut self, mut n: usize) {
        while n > 0 {
            let avail = self.segs[0].len() - self.cursor;
            if n >= avail {
                n -= avail;
                let mut seg = self.segs.pop_front().expect("segment present");
                seg.clear();
                if self.pool.len() < POOL_MAX {
                    self.pool.push(seg);
                }
                self.cursor = 0;
            } else {
                self.cursor += n;
                n = 0;
            }
        }
    }

    /// Drops empty segments (a `tail()` the caller never wrote to).
    fn shed_empty(&mut self) {
        while self.segs.front().is_some_and(|s| s.len() == self.cursor) {
            let mut seg = self.segs.pop_front().expect("segment present");
            seg.clear();
            if self.pool.len() < POOL_MAX {
                self.pool.push(seg);
            }
            self.cursor = 0;
        }
    }

    /// Writes as much pending output as the sink accepts, offering all
    /// segments per call via `write_vectored`. Returns the number of
    /// bytes moved (0 when the sink is not writable). Generic over the
    /// sink so property tests can drive it against an in-memory oracle.
    pub fn write_to<W: Write>(&mut self, sink: &mut W) -> io::Result<usize> {
        let mut moved = 0;
        loop {
            self.shed_empty();
            if self.segs.is_empty() {
                break;
            }
            let empty = IoSlice::new(&[]);
            let mut iov = [empty; MAX_IOV];
            let mut k = 0;
            for (i, seg) in self.segs.iter().take(MAX_IOV).enumerate() {
                let part = if i == 0 {
                    &seg[self.cursor..]
                } else {
                    &seg[..]
                };
                if !part.is_empty() {
                    iov[k] = IoSlice::new(part);
                    k += 1;
                }
            }
            match sink.write_vectored(&iov[..k]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.advance(n);
                    moved += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(moved)
    }
}

/// Byte/event counters one connection accumulates on its hot path.
/// Plain integers — the shard decides when (and whether) to fold them
/// into a telemetry recorder, so the per-I/O cost is an increment.
#[derive(Debug, Default, Clone, Copy)]
pub struct IoCounters {
    /// Bytes read off the socket.
    pub bytes_in: u64,
    /// Bytes written to the socket.
    pub bytes_out: u64,
    /// Reads/writes that returned `WouldBlock`.
    pub would_block: u64,
    /// Reads refused because the watermark paused the connection.
    pub watermark_stalls: u64,
}

/// One non-blocking TCP connection: socket + outbound buffer +
/// backpressure state. Framing is deliberately *not* here — each
/// consumer (agent server, controller, bench client) owns its framer,
/// so the server's hot path can feed raw bytes straight to the agent.
#[derive(Debug)]
pub struct NbConn {
    stream: TcpStream,
    /// Outbound bytes awaiting the socket.
    pub out: OutBuf,
    /// Read-pause hysteresis over `out.pending()`.
    pub wm: Watermark,
    /// Hot-path I/O counters (see [`IoCounters`]).
    pub io: IoCounters,
    closed: bool,
}

impl NbConn {
    /// Wraps an accepted/connected stream: switches it to non-blocking
    /// mode and disables Nagle (the whole point of the reactor is that
    /// *we* batch, in [`OutBuf`], not the kernel timer).
    pub fn new(stream: TcpStream) -> io::Result<NbConn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(NbConn {
            stream,
            out: OutBuf::new(),
            wm: Watermark::default(),
            io: IoCounters::default(),
            closed: false,
        })
    }

    /// Whether the peer has closed the connection.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Whether reads are currently paused by backpressure.
    #[must_use]
    pub fn is_paused(&self) -> bool {
        self.wm.is_paused()
    }

    /// Flushes pending output. Returns bytes written.
    pub fn flush(&mut self) -> io::Result<usize> {
        let moved = self.out.write_to(&mut self.stream)?;
        self.io.bytes_out += moved as u64;
        if self.out.pending() > 0 {
            // write_to only stops short on WouldBlock.
            self.io.would_block += 1;
        }
        self.wm.drained(self.out.pending());
        Ok(moved)
    }

    /// Reads once into `scratch`, honouring backpressure: a connection
    /// whose output buffer is over the high watermark is not read
    /// (returns 0) until it drains. Returns the number of bytes read
    /// (0 when nothing is available); EOF marks the connection closed.
    pub fn read_into(&mut self, scratch: &mut [u8]) -> io::Result<usize> {
        if !self.wm.allow_read(self.out.pending()) {
            self.io.watermark_stalls += 1;
            return Ok(0);
        }
        if self.closed {
            return Ok(0);
        }
        loop {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.closed = true;
                    return Ok(0);
                }
                Ok(n) => {
                    self.io.bytes_in += n as u64;
                    return Ok(n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.io.would_block += 1;
                    return Ok(0);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == io::ErrorKind::ConnectionReset
                        || e.kind() == io::ErrorKind::BrokenPipe =>
                {
                    self.closed = true;
                    return Ok(0);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Idle backoff for a scan loop: spin a few empty sweeps, then sleep
/// briefly so an idle reactor costs ~no CPU while a busy one never
/// sleeps. Call [`Pacer::progressed`] whenever a sweep moved bytes and
/// [`Pacer::idle`] when it moved nothing.
///
/// The pacer is *latency-aware*: [`Pacer::idle`] takes whether any
/// connection still has work in flight (un-flushed output, or decoded
/// requests awaiting replies). While work is pending the sleep stays
/// capped at the short tier, so a momentarily-quiet socket under a deep
/// pipeline window costs 50 µs of added latency, not 500 µs — the
/// difference between a bounded p99 and a cliff.
#[derive(Debug, Default)]
pub struct Pacer {
    empty_sweeps: u32,
}

impl Pacer {
    /// A fresh pacer.
    #[must_use]
    pub fn new() -> Pacer {
        Pacer::default()
    }

    /// The last sweep made progress: stay hot.
    pub fn progressed(&mut self) {
        self.empty_sweeps = 0;
    }

    /// The last sweep made no progress: yield, then sleep with a small
    /// bounded backoff. `work_in_flight` caps the backoff at the short
    /// tier so pending work never waits out a long sleep.
    pub fn idle(&mut self, work_in_flight: bool) {
        self.empty_sweeps = self.empty_sweeps.saturating_add(1);
        if work_in_flight {
            // With work in flight, yield instead of sleeping: a yield
            // requeues behind whoever has the bytes with no timer set,
            // while a 50 µs sleep arms a high-resolution timer whose
            // expiry preempts the busy thread — across many reactor
            // threads on few cores those wakeups fragment every sweep.
            if self.empty_sweeps <= 200 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(50));
            }
            return;
        }
        match self.empty_sweeps {
            0..=3 => std::thread::yield_now(),
            4..=50 => std::thread::sleep(Duration::from_micros(50)),
            _ => std::thread::sleep(Duration::from_micros(500)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (NbConn, NbConn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (NbConn::new(a).unwrap(), NbConn::new(b).unwrap())
    }

    #[test]
    fn bytes_round_trip_through_outbuf() {
        let (mut a, mut b) = pair();
        a.out.tail().extend_from_slice(b"hello reactor");
        let mut scratch = [0u8; 64];
        let mut got = Vec::new();
        let mut pacer = Pacer::new();
        while got.len() < 13 {
            a.flush().unwrap();
            let n = b.read_into(&mut scratch).unwrap();
            if n == 0 {
                pacer.idle(true);
            } else {
                got.extend_from_slice(&scratch[..n]);
            }
        }
        assert_eq!(&got, b"hello reactor");
        assert_eq!(a.out.pending(), 0);
        assert!(a.io.bytes_out >= 13);
        assert!(b.io.bytes_in >= 13);
    }

    #[test]
    fn backpressure_pauses_and_resumes_reads() {
        let (mut a, _b) = pair();
        a.wm = Watermark::new(8, 4);
        a.out.tail().extend_from_slice(&[0u8; 16]);
        let mut scratch = [0u8; 8];
        // Over the high watermark: the read is refused.
        assert_eq!(a.read_into(&mut scratch).unwrap(), 0);
        assert!(a.is_paused());
        assert_eq!(a.io.watermark_stalls, 1);
        // Draining below the low watermark lifts the pause.
        a.flush().unwrap();
        assert!(!a.is_paused());
    }

    #[test]
    fn eof_marks_closed() {
        let (mut a, b) = pair();
        drop(b);
        let mut scratch = [0u8; 8];
        let mut pacer = Pacer::new();
        for _ in 0..1000 {
            a.read_into(&mut scratch).unwrap();
            if a.is_closed() {
                break;
            }
            pacer.idle(false);
        }
        assert!(a.is_closed());
    }

    #[test]
    fn outbuf_rolls_segments_and_preserves_order() {
        let mut out = OutBuf::new();
        let mut expect = Vec::new();
        // Append enough distinct frames to span several segments.
        for i in 0..5000u32 {
            let frame = i.to_be_bytes();
            out.tail().extend_from_slice(&frame);
            expect.extend_from_slice(&frame);
        }
        assert_eq!(out.pending(), expect.len());
        let mut sink = Vec::new();
        let moved = out.write_to(&mut sink).unwrap();
        assert_eq!(moved, expect.len());
        assert_eq!(sink, expect);
        assert_eq!(out.pending(), 0);
    }

    #[test]
    fn outbuf_partial_drain_keeps_remaining_bytes() {
        /// Accepts at most `cap` bytes per write call.
        struct Throttle {
            got: Vec<u8>,
            cap: usize,
            budget: usize,
        }
        impl Write for Throttle {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.budget == 0 {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
                }
                let n = buf.len().min(self.cap).min(self.budget);
                self.got.extend_from_slice(&buf[..n]);
                self.budget -= n;
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut out = OutBuf::new();
        let payload: Vec<u8> = (0..200_000u32).map(|i| i as u8).collect();
        for chunk in payload.chunks(100) {
            out.tail().extend_from_slice(chunk);
        }
        let mut sink = Throttle {
            got: Vec::new(),
            cap: 1000,
            budget: 131_072,
        };
        out.write_to(&mut sink).unwrap();
        assert_eq!(out.pending(), payload.len() - sink.got.len());
        sink.budget = usize::MAX;
        out.write_to(&mut sink).unwrap();
        assert_eq!(sink.got, payload);
        assert_eq!(out.pending(), 0);
    }

    #[test]
    fn watermark_hysteresis_has_a_gap() {
        let mut wm = Watermark::new(10, 5);
        assert!(wm.allow_read(9));
        assert!(!wm.allow_read(10));
        // Draining to between low and high keeps the pause.
        wm.drained(7);
        assert!(wm.is_paused());
        assert!(!wm.allow_read(7));
        // Only below low does it lift.
        wm.drained(4);
        assert!(!wm.is_paused());
        assert!(wm.allow_read(4));
    }
}
