//! The transport core: non-blocking connections with bounded, reused
//! buffers.
//!
//! There is no epoll here by design (the workspace is dependency-free):
//! the reactor is a readiness *scan* loop — every iteration tries to
//! flush and read each live connection, and a [`Pacer`] backs off when
//! a full sweep makes no progress. At the connection counts this crate
//! targets (hundreds to ~1k on loopback) the scan is cheap relative to
//! the traffic it moves, and the hot path stays allocation-free:
//! sockets read into one shared scratch buffer, writes drain a reused
//! per-connection [`OutBuf`].
//!
//! Backpressure is explicit and local: a connection whose `OutBuf`
//! crosses its high watermark is not read again until the buffer drains
//! below the low watermark, so a slow peer stalls its own connection
//! instead of growing an unbounded queue.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Default high watermark: stop reading a connection whose un-flushed
/// output exceeds this.
pub const HIGH_WATER: usize = 256 * 1024;
/// Default low watermark: resume reading once un-flushed output drains
/// below this.
pub const LOW_WATER: usize = 64 * 1024;
/// Size of the shared read scratch each reactor loop allocates once.
pub const READ_CHUNK: usize = 256 * 1024;

/// A reused outbound byte buffer with a drain cursor.
///
/// Appending encodes frames at the tail; flushing writes from the
/// cursor. The backing allocation is kept and compacted rather than
/// reallocated, so steady-state appends cost a `memcpy` only.
#[derive(Debug, Default)]
pub struct OutBuf {
    buf: Vec<u8>,
    cursor: usize,
}

impl OutBuf {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> OutBuf {
        OutBuf::default()
    }

    /// The append end; encode frames directly into this.
    pub fn tail(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }

    /// Bytes accepted but not yet written to the socket.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.cursor
    }

    /// Writes as much pending output as the socket accepts. Returns the
    /// number of bytes moved (0 when the socket is not writable).
    pub fn write_to(&mut self, stream: &mut TcpStream) -> io::Result<usize> {
        let mut moved = 0;
        while self.cursor < self.buf.len() {
            match stream.write(&self.buf[self.cursor..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.cursor += n;
                    moved += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Reclaim the drained prefix: cheap once fully flushed, and
        // compacted early enough that the buffer never creeps.
        if self.cursor == self.buf.len() {
            self.buf.clear();
            self.cursor = 0;
        } else if self.cursor >= 4096 && self.cursor * 2 >= self.buf.len() {
            self.buf.drain(..self.cursor);
            self.cursor = 0;
        }
        Ok(moved)
    }
}

/// One non-blocking TCP connection: socket + outbound buffer +
/// backpressure state. Framing is deliberately *not* here — each
/// consumer (agent server, controller, bench client) owns its framer,
/// so the server's hot path can feed raw bytes straight to the agent.
#[derive(Debug)]
pub struct NbConn {
    stream: TcpStream,
    /// Outbound bytes awaiting the socket.
    pub out: OutBuf,
    /// High watermark: reads pause above this much pending output.
    pub high_water: usize,
    /// Low watermark: reads resume below this much pending output.
    pub low_water: usize,
    paused: bool,
    closed: bool,
}

impl NbConn {
    /// Wraps an accepted/connected stream: switches it to non-blocking
    /// mode and disables Nagle (the whole point of the reactor is that
    /// *we* batch, in [`OutBuf`], not the kernel timer).
    pub fn new(stream: TcpStream) -> io::Result<NbConn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(NbConn {
            stream,
            out: OutBuf::new(),
            high_water: HIGH_WATER,
            low_water: LOW_WATER,
            paused: false,
            closed: false,
        })
    }

    /// Whether the peer has closed the connection.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Whether reads are currently paused by backpressure.
    #[must_use]
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Flushes pending output. Returns bytes written.
    pub fn flush(&mut self) -> io::Result<usize> {
        let moved = self.out.write_to(&mut self.stream)?;
        if self.paused && self.out.pending() < self.low_water {
            self.paused = false;
        }
        Ok(moved)
    }

    /// Reads once into `scratch`, honouring backpressure: a connection
    /// whose output buffer is over the high watermark is not read
    /// (returns 0) until it drains. Returns the number of bytes read
    /// (0 when nothing is available); EOF marks the connection closed.
    pub fn read_into(&mut self, scratch: &mut [u8]) -> io::Result<usize> {
        if self.out.pending() >= self.high_water {
            self.paused = true;
        }
        if self.paused || self.closed {
            return Ok(0);
        }
        loop {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.closed = true;
                    return Ok(0);
                }
                Ok(n) => return Ok(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(0),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == io::ErrorKind::ConnectionReset
                        || e.kind() == io::ErrorKind::BrokenPipe =>
                {
                    self.closed = true;
                    return Ok(0);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Idle backoff for a scan loop: spin a few empty sweeps, then sleep
/// briefly so an idle reactor costs ~no CPU while a busy one never
/// sleeps. Call [`Pacer::progressed`] whenever a sweep moved bytes and
/// [`Pacer::idle`] when it moved nothing.
#[derive(Debug, Default)]
pub struct Pacer {
    empty_sweeps: u32,
}

impl Pacer {
    /// A fresh pacer.
    #[must_use]
    pub fn new() -> Pacer {
        Pacer::default()
    }

    /// The last sweep made progress: stay hot.
    pub fn progressed(&mut self) {
        self.empty_sweeps = 0;
    }

    /// The last sweep made no progress: yield, then sleep with a small
    /// bounded backoff.
    pub fn idle(&mut self) {
        self.empty_sweeps = self.empty_sweeps.saturating_add(1);
        match self.empty_sweeps {
            0..=3 => std::thread::yield_now(),
            4..=50 => std::thread::sleep(Duration::from_micros(50)),
            _ => std::thread::sleep(Duration::from_micros(500)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (NbConn, NbConn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (NbConn::new(a).unwrap(), NbConn::new(b).unwrap())
    }

    #[test]
    fn bytes_round_trip_through_outbuf() {
        let (mut a, mut b) = pair();
        a.out.tail().extend_from_slice(b"hello reactor");
        let mut scratch = [0u8; 64];
        let mut got = Vec::new();
        let mut pacer = Pacer::new();
        while got.len() < 13 {
            a.flush().unwrap();
            let n = b.read_into(&mut scratch).unwrap();
            if n == 0 {
                pacer.idle();
            } else {
                got.extend_from_slice(&scratch[..n]);
            }
        }
        assert_eq!(&got, b"hello reactor");
        assert_eq!(a.out.pending(), 0);
    }

    #[test]
    fn backpressure_pauses_and_resumes_reads() {
        let (mut a, _b) = pair();
        a.high_water = 8;
        a.low_water = 4;
        a.out.tail().extend_from_slice(&[0u8; 16]);
        let mut scratch = [0u8; 8];
        // Over the high watermark: the read is refused.
        assert_eq!(a.read_into(&mut scratch).unwrap(), 0);
        assert!(a.is_paused());
        // Draining below the low watermark lifts the pause.
        a.flush().unwrap();
        assert!(!a.is_paused());
    }

    #[test]
    fn eof_marks_closed() {
        let (mut a, b) = pair();
        drop(b);
        let mut scratch = [0u8; 8];
        let mut pacer = Pacer::new();
        for _ in 0..1000 {
            a.read_into(&mut scratch).unwrap();
            if a.is_closed() {
                break;
            }
            pacer.idle();
        }
        assert!(a.is_closed());
    }
}
