//! The agent server: N switch agents behind a sharded, reactor-per-core
//! transport.
//!
//! Every connection speaks plain `ofwire` frames. The first frame must
//! be a [`VtMsg::Hello`] binding the connection to a switch from the
//! server's roster; after that the connection runs in whichever mode
//! the server was built in:
//!
//! * **Realtime** ([`ServerMode::Realtime`]) — the benchmark mode.
//!   Inbound bytes go straight to
//!   [`Agent::feed_into`](switchsim::agent::Agent::feed_into) (the
//!   agent's own framer handles torn frames, whole frames decode
//!   zero-copy from the read scratch), wire replies append to the
//!   connection's reused [`OutBuf`](crate::reactor::OutBuf), and `now`
//!   is the wall clock. Throughput comes from syscall batching: one
//!   read drains a whole pipeline window, one vectored write flushes
//!   all its replies.
//! * **Virtual time** ([`ServerMode::Virtual`]) — the inference mode.
//!   Ops arrive annotated with [`VtMsg::Submit`]; the server owns the
//!   link model and per-switch latency RNG (derived exactly as the
//!   in-memory testbed derives them at attach) and replays the
//!   testbed's arrival/start/done/ack arithmetic, answering each op
//!   with a [`VtMsg::Ack`] instead of the op's plain replies. See
//!   [`crate::vt`] for why.
//!
//! ## Sharding
//!
//! The server is split into a **front door** and N **reactor shards**
//! ([`ServerConfig::shards`]):
//!
//! * The front door owns the listener. It accepts connections, runs the
//!   hello handshake, validates and claims the roster slot, and hands
//!   the bound connection — socket, torn-frame leftover and all — to
//!   shard [`shard_of`]`(dpid, N)` over that shard's mpsc channel.
//! * Each shard is an independent readiness loop with its own read
//!   scratch, out-buffer pools (inside each connection's `OutBuf`), and
//!   [`Pacer`]. Shards share **nothing mutable** on the hot path: the
//!   only cross-thread traffic is the accept-time handoff and one
//!   atomic per roster slot (the claim flag, touched at bind/close) plus
//!   the live-connection count used for shutdown.
//!
//! The partition function is pure — a reconnecting switch always lands
//! back on the same shard, and a roster slot whose connection closed
//! releases its claim so the reconnect can bind again.
//!
//! Backpressure: a connection whose write buffer is over its high
//! watermark is not read until it drains — the reactor never queues
//! unboundedly on behalf of a slow peer.

use crate::reactor::{IoCounters, NbConn, Pacer, READ_CHUNK};
use crate::vt::{VtMsg, VtOpTag, TANGO_VENDOR};
use ofwire::barrier::BarrierTracker;
use ofwire::codec::Framer;
use ofwire::message::Message;
use ofwire::types::{Dpid, Xid};
use simnet::link::Link;
use simnet::rng::DetRng;
use simnet::telemetry::{Recorder, Telemetry};
use simnet::time::SimTime;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use switchsim::agent::{Agent, AgentOutput};
use switchsim::chan::{self, wire_keys, OpKind, VirtualTimeline};
use switchsim::profiles::SwitchProfile;
use switchsim::switch::Switch;

/// How the server interprets time and answers operations.
#[derive(Debug, Clone)]
pub enum ServerMode {
    /// Wall-clock agents answering with plain wire replies (benchmark
    /// and demo mode).
    Realtime,
    /// Virtual-time agents answering with [`VtMsg::Ack`] reports,
    /// modelling every control channel with `link` (inference mode).
    Virtual {
        /// The control-channel model applied to every switch.
        link: Link,
    },
}

/// Server shape: how many reactor shards, and whether they record
/// telemetry.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Reactor shard count (threads). 1 reproduces the single-loop
    /// behaviour behind the same front door.
    pub shards: usize,
    /// Record per-shard wire counters (see
    /// [`switchsim::chan::wire_keys`]); merged into
    /// [`ServerStats::metrics`] at shutdown. Off costs nothing on the
    /// hot path.
    pub telemetry: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            shards: 1,
            telemetry: false,
        }
    }
}

/// Which shard a switch's connection is served by.
///
/// Pure (FNV-1a over the dpid), so a reconnecting switch lands on the
/// same shard every time and a fleet spreads evenly without
/// coordination.
#[must_use]
pub fn shard_of(dpid: u64, shards: usize) -> usize {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in dpid.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    (h % shards.max(1) as u64) as usize
}

/// Counters one reactor shard reports when it exits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Connections bound to this shard over its lifetime.
    pub conns: usize,
    /// Operations completed (virtual-time ops, or realtime messages
    /// dispatched to an agent).
    pub ops: u64,
    /// Protocol violations that closed a connection.
    pub errors: usize,
    /// Sweeps that moved at least one byte.
    pub wakeups: u64,
    /// Bytes read off this shard's sockets.
    pub bytes_in: u64,
    /// Bytes written to this shard's sockets.
    pub bytes_out: u64,
    /// Socket calls that returned `WouldBlock`.
    pub would_block: u64,
    /// Reads refused by watermark backpressure.
    pub watermark_stalls: u64,
}

/// Counters the server reports when it exits.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub accepted: usize,
    /// Operations completed, summed over shards.
    pub ops: u64,
    /// Protocol violations that closed a connection (handshake errors
    /// plus shard-side stream errors).
    pub errors: usize,
    /// Per-shard breakdown.
    pub shards: Vec<ShardStats>,
    /// Rendered telemetry snapshot, when [`ServerConfig::telemetry`]
    /// was on (merged across shards).
    pub metrics: Option<String>,
}

/// Handle to a running [`AgentServer`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<io::Result<ServerStats>>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the server to stop and waits for its threads, returning
    /// the final counters.
    pub fn shutdown(mut self) -> io::Result<ServerStats> {
        self.stop.store(true, Ordering::Relaxed);
        let join = self.join.take().expect("shutdown consumes the handle");
        join.join().expect("server thread panicked")
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// One roster slot: a switch a connection may claim with its hello.
/// Everything but the claim flag is immutable, so the front door can
/// bind (and shards release) without a lock.
struct RosterSlot {
    dpid: Dpid,
    /// Set while a connection is bound to this switch; a hello for a
    /// claimed dpid is a protocol error, and a closed connection
    /// releases the claim so the switch can reconnect.
    claimed: AtomicBool,
    profile: SwitchProfile,
    seed: u64,
    link_rng: DetRng,
}

/// A bound connection travelling from the front door to its shard.
struct Handoff {
    conn: NbConn,
    /// Index into the roster (claim already taken by the front door).
    slot: usize,
    /// Bytes that arrived behind the hello in the same read(s).
    leftover: Vec<u8>,
}

/// The switch-agent server. Construction happens via
/// [`AgentServer::spawn`] / [`AgentServer::spawn_with`].
pub struct AgentServer;

impl AgentServer {
    /// Binds a loopback listener and spawns a single-shard server for
    /// `roster`. `seed` plays the role of the testbed's master seed:
    /// per-switch datapath seeds and link-latency streams derive from
    /// it in roster order, exactly as
    /// [`Testbed::attach`](switchsim::harness::Testbed::attach) would
    /// derive them attaching the same dpids in the same order.
    ///
    /// The server exits when [`ServerHandle::shutdown`] is called, or
    /// on its own once at least one connection was accepted and all
    /// connections have closed.
    pub fn spawn(
        seed: u64,
        roster: Vec<(Dpid, SwitchProfile)>,
        mode: ServerMode,
    ) -> io::Result<ServerHandle> {
        Self::spawn_with(seed, roster, mode, ServerConfig::default())
    }

    /// [`AgentServer::spawn`] with an explicit shard count and
    /// telemetry switch.
    pub fn spawn_with(
        seed: u64,
        roster: Vec<(Dpid, SwitchProfile)>,
        mode: ServerMode,
        cfg: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let live = Arc::new(AtomicUsize::new(0));
        let mut master = DetRng::new(seed);
        let roster: Arc<Vec<RosterSlot>> = Arc::new(
            roster
                .into_iter()
                .map(|(dpid, profile)| {
                    let (seed, link_rng) = chan::attach_streams(&mut master, dpid);
                    RosterSlot {
                        dpid,
                        claimed: AtomicBool::new(false),
                        profile,
                        seed,
                        link_rng,
                    }
                })
                .collect(),
        );
        let shards = cfg.shards.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut shard_joins = Vec::with_capacity(shards);
        for idx in 0..shards {
            let (tx, rx) = std::sync::mpsc::channel();
            senders.push(tx);
            let roster = Arc::clone(&roster);
            let mode = mode.clone();
            let stop = Arc::clone(&stop);
            let live = Arc::clone(&live);
            let join = std::thread::Builder::new()
                .name(format!("tango-net-shard{idx}"))
                .spawn(move || run_shard(idx, &rx, &roster, &mode, &stop, &live, cfg.telemetry))?;
            shard_joins.push(join);
        }
        let stop_flag = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("tango-net-accept".into())
            .spawn(move || {
                run_acceptor(&listener, &roster, senders, shard_joins, &stop_flag, &live)
            })?;
        Ok(ServerHandle {
            addr,
            stop,
            join: Some(join),
        })
    }
}

/// A connection still waiting for its binding hello.
struct PendingConn {
    conn: NbConn,
    framer: Framer,
}

/// Outcome of feeding handshake bytes to a pending connection.
enum HandshakeStep {
    /// Hello not complete yet.
    Incomplete,
    /// Hello parsed and roster slot claimed.
    Bound { slot: usize, leftover: Vec<u8> },
}

fn proto_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Parses handshake bytes; claims the roster slot on a complete hello.
fn handshake_step(
    framer: &mut Framer,
    bytes: &[u8],
    roster: &[RosterSlot],
) -> io::Result<HandshakeStep> {
    let mut input = bytes;
    let hello = framer
        .next_message_from(&mut input)
        .map_err(|_| proto_err("unparseable handshake"))?;
    let Some((_, msg)) = hello else {
        return Ok(HandshakeStep::Incomplete); // hello still torn
    };
    let Message::Vendor { vendor, data } = msg else {
        return Err(proto_err("first frame must be a vendor hello"));
    };
    if vendor != TANGO_VENDOR {
        return Err(proto_err("unknown vendor id in hello"));
    }
    let VtMsg::Hello { dpid } = VtMsg::decode(&data).map_err(|_| proto_err("bad hello payload"))?
    else {
        return Err(proto_err("first vt message must be hello"));
    };
    let slot = roster
        .iter()
        .position(|e| e.dpid.0 == dpid)
        .ok_or_else(|| proto_err("hello for a dpid not in the roster"))?;
    if roster[slot].claimed.swap(true, Ordering::AcqRel) {
        return Err(proto_err("dpid already claimed"));
    }
    let mut leftover = framer.take_pending();
    leftover.extend_from_slice(input);
    Ok(HandshakeStep::Bound { slot, leftover })
}

/// The front door: accept, handshake, hand off to the owning shard.
fn run_acceptor(
    listener: &TcpListener,
    roster: &[RosterSlot],
    senders: Vec<Sender<Handoff>>,
    shard_joins: Vec<JoinHandle<ShardExit>>,
    stop: &AtomicBool,
    live: &AtomicUsize,
) -> io::Result<ServerStats> {
    let mut stats = ServerStats::default();
    let mut pending: Vec<PendingConn> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut pacer = Pacer::new();
    let shards = senders.len();
    loop {
        let done = stop.load(Ordering::Relaxed)
            || (stats.accepted > 0 && pending.is_empty() && live.load(Ordering::Relaxed) == 0);
        if done {
            break;
        }
        let mut progress = false;
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    pending.push(PendingConn {
                        conn: NbConn::new(stream)?,
                        framer: Framer::new(),
                    });
                    stats.accepted += 1;
                    live.fetch_add(1, Ordering::Relaxed);
                    progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        let mut i = 0;
        while i < pending.len() {
            let p = &mut pending[i];
            let n = p.conn.read_into(&mut scratch).unwrap_or_default();
            if p.conn.is_closed() {
                // The peer vanished mid-handshake: not a protocol
                // violation, just a connection that never bound.
                pending.swap_remove(i);
                live.fetch_sub(1, Ordering::Relaxed);
                progress = true;
                continue;
            }
            if n == 0 {
                i += 1;
                continue;
            }
            progress = true;
            match handshake_step(&mut p.framer, &scratch[..n], roster) {
                Ok(HandshakeStep::Incomplete) => {
                    i += 1;
                }
                Ok(HandshakeStep::Bound { slot, leftover }) => {
                    let p = pending.swap_remove(i);
                    let shard = shard_of(roster[slot].dpid.0, shards);
                    if senders[shard]
                        .send(Handoff {
                            conn: p.conn,
                            slot,
                            leftover,
                        })
                        .is_err()
                    {
                        // Shard already gone (shutdown race): the claim
                        // dies with the connection.
                        roster[slot].claimed.store(false, Ordering::Release);
                        live.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                Err(_) => {
                    stats.errors += 1;
                    pending.swap_remove(i);
                    live.fetch_sub(1, Ordering::Relaxed);
                }
            }
        }
        if progress {
            pacer.progressed();
        } else {
            pacer.idle(!pending.is_empty());
        }
    }
    // Closing the channels tells every shard to finish and exit.
    drop(senders);
    let mut recorders: Vec<Recorder> = Vec::new();
    for join in shard_joins {
        let shard = join.join().expect("shard thread panicked");
        stats.ops += shard.stats.ops;
        stats.errors += shard.stats.errors;
        stats.shards.push(shard.stats);
        if let Some(rec) = shard.recorder {
            recorders.push(*rec);
        }
    }
    if !recorders.is_empty() {
        stats.metrics = Some(Recorder::merge_metrics(recorders.iter()).render_text());
    }
    Ok(stats)
}

/// What a shard thread returns: its counters, plus its telemetry
/// recorder when recording was on.
struct ShardExit {
    stats: ShardStats,
    recorder: Option<Box<Recorder>>,
}

/// Per-connection protocol state (post-handshake).
enum SessState {
    /// Bound, wall-clock mode.
    Realtime(Box<RtState>),
    /// Bound, virtual-time mode.
    Virtual(Box<VtState>),
}

struct RtState {
    agent: Agent,
}

struct VtState {
    dpid: Dpid,
    agent: Agent,
    link: Link,
    rng: DetRng,
    timeline: VirtualTimeline,
    barriers: BarrierTracker<usize>,
    framer: Framer,
    /// The op currently being assembled, announced by its submit frame.
    cur: Option<CurOp>,
    /// Retired op buffer awaiting reuse.
    spare: Vec<u8>,
}

struct CurOp {
    token: u64,
    ready: SimTime,
    tag: VtOpTag,
    frames_left: u32,
    wire_len: u32,
    /// The op's frames, re-encoded verbatim as they arrive.
    bytes: Vec<u8>,
    /// Length of the first frame (sizes an echo's return leg).
    first_frame_len: usize,
    /// Xid and length of the most recent frame (a batch's barrier is
    /// its last frame).
    last_frame: (Xid, usize),
}

struct Session {
    conn: NbConn,
    slot: usize,
    state: SessState,
    /// Consecutive empty reads (the backoff exponent).
    misses: u32,
    /// Sweeps left before this session is polled again. A session that
    /// keeps returning `WouldBlock` while its shard-mates are busy is
    /// skipped for up to [`MAX_READ_SKIP`] sweeps — otherwise a shard
    /// with a few hot connections burns a wasted read syscall per idle
    /// connection per sweep (the dominant cost at 256 connections).
    skip: u32,
}

/// Longest a session sits out the read sweep, in sweeps. Busy shards
/// sweep in tens of microseconds and idle ones tick at the pacer's
/// 50 µs tier, so the cap adds well under a millisecond of latency
/// while cutting the idle-poll syscall rate ~16×.
const MAX_READ_SKIP: u32 = 16;

/// Builds a bound session from a handoff, in the server's mode.
fn bind_session(h: Handoff, roster: &[RosterSlot], mode: &ServerMode) -> Session {
    let slot = &roster[h.slot];
    let agent = Agent::new(Switch::new(slot.profile.clone(), slot.dpid, slot.seed));
    let state = match mode {
        ServerMode::Realtime => SessState::Realtime(Box::new(RtState { agent })),
        ServerMode::Virtual { link } => SessState::Virtual(Box::new(VtState {
            dpid: slot.dpid,
            agent,
            link: *link,
            rng: slot.link_rng.clone(),
            timeline: VirtualTimeline::new(),
            barriers: BarrierTracker::new(),
            framer: Framer::new(),
            cur: None,
            spare: Vec::new(),
        })),
    };
    Session {
        conn: h.conn,
        slot: h.slot,
        state,
        misses: 0,
        skip: 0,
    }
}

/// One reactor shard: drains its handoff channel, then sweeps its
/// sessions — flush, read, dispatch — with no shared mutable state
/// beyond the roster claim flags and the live count.
fn run_shard(
    idx: usize,
    rx: &Receiver<Handoff>,
    roster: &[RosterSlot],
    mode: &ServerMode,
    stop: &AtomicBool,
    live: &AtomicUsize,
    telemetry: bool,
) -> ShardExit {
    let mut tele = if telemetry {
        Telemetry::recording()
    } else {
        Telemetry::off()
    };
    let mut stats = ShardStats {
        shard: idx,
        ..ShardStats::default()
    };
    let mut sessions: Vec<Session> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut outs: Vec<AgentOutput> = Vec::new();
    let mut pacer = Pacer::new();
    let epoch = Instant::now();
    let mut inlet_open = true;
    loop {
        let mut progress = false;
        while inlet_open {
            match rx.try_recv() {
                Ok(mut h) => {
                    let leftover = std::mem::take(&mut h.leftover);
                    let mut sess = bind_session(h, roster, mode);
                    stats.conns += 1;
                    tele.count(wire_keys::CONNS, 1);
                    progress = true;
                    // Frames that arrived behind the hello in the same
                    // read(s) must be processed before any socket data.
                    if !leftover.is_empty() {
                        let now = SimTime(epoch.elapsed().as_nanos() as u64);
                        if sess
                            .on_bytes(&leftover, now, &mut outs, &mut stats)
                            .is_err()
                        {
                            stats.errors += 1;
                            retire_session(sess, roster, live, &mut stats, &mut tele);
                            continue;
                        }
                    }
                    sessions.push(sess);
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    inlet_open = false;
                }
            }
        }
        let stopping = stop.load(Ordering::Relaxed);
        let mut i = 0;
        while i < sessions.len() {
            let sess = &mut sessions[i];
            // A write error means the peer vanished; reads will observe
            // the close below.
            let flushed = sess.conn.flush().unwrap_or(0);
            progress |= flushed > 0;
            let mut drop_sess = false;
            let mut errored = false;
            if sess.skip > 0 && !stopping {
                sess.skip -= 1;
            } else {
                match sess.conn.read_into(&mut scratch) {
                    Ok(n) if n > 0 => {
                        progress = true;
                        sess.misses = 0;
                        let now = SimTime(epoch.elapsed().as_nanos() as u64);
                        if sess
                            .on_bytes(&scratch[..n], now, &mut outs, &mut stats)
                            .is_err()
                        {
                            drop_sess = true;
                            errored = true;
                        }
                    }
                    Ok(_) => {
                        sess.misses += 1;
                        sess.skip = (1u32 << sess.misses.min(4)).min(MAX_READ_SKIP);
                    }
                    Err(_) => {
                        drop_sess = true;
                        errored = true;
                    }
                }
            }
            if !drop_sess && sess.conn.is_closed() && sess.conn.out.pending() == 0 {
                drop_sess = true;
            }
            if drop_sess || stopping {
                if errored {
                    stats.errors += 1;
                }
                let sess = sessions.swap_remove(i);
                retire_session(sess, roster, live, &mut stats, &mut tele);
                progress = true;
                continue;
            }
            i += 1;
        }
        if stopping || (!inlet_open && sessions.is_empty()) {
            break;
        }
        if progress {
            stats.wakeups += 1;
            tele.count(wire_keys::WAKEUPS, 1);
            pacer.progressed();
        } else {
            // Idle sweeps still tick each session's skip countdown, so
            // a skipped session is re-polled within MAX_READ_SKIP pacer
            // periods — the skip schedule needs no reset on idle.
            let in_flight = sessions.iter().any(|s| s.conn.out.pending() > 0);
            pacer.idle(in_flight);
        }
    }
    for sess in sessions.drain(..) {
        retire_session(sess, roster, live, &mut stats, &mut tele);
    }
    tele.count(wire_keys::OPS, stats.ops);
    ShardExit {
        stats,
        recorder: tele.take(),
    }
}

/// Releases a closing session's roster claim and folds its I/O counters
/// into the shard totals (and telemetry, when recording).
fn retire_session(
    sess: Session,
    roster: &[RosterSlot],
    live: &AtomicUsize,
    stats: &mut ShardStats,
    tele: &mut Telemetry,
) {
    let IoCounters {
        bytes_in,
        bytes_out,
        would_block,
        watermark_stalls,
    } = sess.conn.io;
    stats.bytes_in += bytes_in;
    stats.bytes_out += bytes_out;
    stats.would_block += would_block;
    stats.watermark_stalls += watermark_stalls;
    tele.count(wire_keys::BYTES_IN, bytes_in);
    tele.count(wire_keys::BYTES_OUT, bytes_out);
    tele.count(wire_keys::WOULD_BLOCK, would_block);
    tele.count(wire_keys::WATERMARK_STALLS, watermark_stalls);
    roster[sess.slot].claimed.store(false, Ordering::Release);
    live.fetch_sub(1, Ordering::Relaxed);
}

impl Session {
    fn on_bytes(
        &mut self,
        bytes: &[u8],
        now: SimTime,
        outs: &mut Vec<AgentOutput>,
        stats: &mut ShardStats,
    ) -> io::Result<()> {
        match &mut self.state {
            SessState::Realtime(rt) => {
                outs.clear();
                rt.agent
                    .feed_into(bytes, now, outs)
                    .map_err(|_| proto_err("unparseable frame stream"))?;
                stats.ops += outs.len() as u64;
                for o in outs.drain(..) {
                    if let Some(reply) = o.reply {
                        reply.encode_frame_into(o.xid, self.conn.out.tail());
                    }
                }
                Ok(())
            }
            SessState::Virtual(vt) => {
                let acked = vt.on_bytes(bytes, outs, self.conn.out.tail())?;
                stats.ops += acked;
                Ok(())
            }
        }
    }
}

impl VtState {
    /// Consumes a chunk of the annotated op stream; appends acks to
    /// `out`. Returns the number of ops completed.
    fn on_bytes(
        &mut self,
        bytes: &[u8],
        outs: &mut Vec<AgentOutput>,
        out: &mut Vec<u8>,
    ) -> io::Result<u64> {
        let mut acked = 0;
        let mut input = bytes;
        loop {
            let msg = self
                .framer
                .next_message_from(&mut input)
                .map_err(|_| proto_err("unparseable frame stream"))?;
            let Some((header, msg)) = msg else {
                return Ok(acked);
            };
            if let Message::Vendor { vendor, data } = &msg {
                if *vendor != TANGO_VENDOR {
                    return Err(proto_err("unknown vendor id"));
                }
                let vt = VtMsg::decode(data).map_err(|_| proto_err("bad vt payload"))?;
                let VtMsg::Submit {
                    token,
                    ready_ns,
                    tag,
                    frames,
                    wire_len,
                } = vt
                else {
                    return Err(proto_err("unexpected vt message mid-stream"));
                };
                if self.cur.is_some() {
                    return Err(proto_err("submit while an op is still assembling"));
                }
                if frames == 0 {
                    return Err(proto_err("op with zero frames"));
                }
                let mut op_buf = std::mem::take(&mut self.spare);
                op_buf.clear();
                self.cur = Some(CurOp {
                    token,
                    ready: SimTime(ready_ns),
                    tag,
                    frames_left: frames,
                    wire_len,
                    bytes: op_buf,
                    first_frame_len: 0,
                    last_frame: (Xid(0), 0),
                });
                continue;
            }
            // An op frame: re-encode it verbatim into the op buffer
            // (encode∘decode is byte-identity for every message the
            // channel codec produces — the framing proptest pins this).
            let cur = self
                .cur
                .as_mut()
                .ok_or_else(|| proto_err("op frame without a submit"))?;
            let off = cur.bytes.len();
            msg.encode_frame_into(header.xid, &mut cur.bytes);
            let frame_len = cur.bytes.len() - off;
            if off == 0 {
                cur.first_frame_len = frame_len;
            }
            cur.last_frame = (header.xid, frame_len);
            cur.frames_left -= 1;
            if cur.frames_left == 0 {
                self.finish_op(outs, out)?;
                acked += 1;
            }
        }
    }

    /// All frames of the current op have arrived: replay the testbed's
    /// timing model, run the agent, and emit the ack.
    fn finish_op(&mut self, outs: &mut Vec<AgentOutput>, out: &mut Vec<u8>) -> io::Result<()> {
        let cur = self.cur.take().expect("finish_op follows a submit");
        if cur.bytes.len() != cur.wire_len as usize {
            return Err(proto_err("op length disagrees with its submit"));
        }
        let kind = match cur.tag {
            VtOpTag::FlowMod => OpKind::FlowMod,
            VtOpTag::Batch => {
                let (barrier_xid, barrier_len) = cur.last_frame;
                let size = cur.bytes.len() - barrier_len;
                self.barriers.register(barrier_xid, size);
                OpKind::Batch { size }
            }
            VtOpTag::Probe => OpKind::Probe,
            VtOpTag::Echo => OpKind::Echo {
                payload: cur.first_frame_len - ofwire::header::OFP_HEADER_LEN,
            },
        };
        let (up, down) =
            chan::draw_latencies(&self.link, &mut self.rng, self.dpid, kind, cur.bytes.len());
        let start = self.timeline.admit(cur.ready, up);
        outs.clear();
        self.agent
            .feed_into(&cur.bytes, start, outs)
            .map_err(|_| proto_err("op frames rejected by the agent"))?;
        let (cost, outcome) = chan::op_completion(kind, outs, &mut self.barriers);
        let (done, acked) = self.timeline.complete(start, cost, down);
        VtMsg::Ack {
            token: cur.token,
            done_ns: done.0,
            acked_ns: acked.0,
            outcome,
        }
        .to_message()
        .encode_frame_into(Xid(0), out);
        self.spare = cur.bytes;
        Ok(())
    }
}
