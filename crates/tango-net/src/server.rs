//! The agent server: N switch agents behind one non-blocking reactor
//! thread.
//!
//! Every connection speaks plain `ofwire` frames. The first frame must
//! be a [`VtMsg::Hello`] binding the connection to a switch from the
//! server's roster; after that the connection runs in whichever mode
//! the server was built in:
//!
//! * **Realtime** ([`ServerMode::Realtime`]) — the benchmark mode.
//!   Inbound bytes go straight to
//!   [`Agent::feed_into`](switchsim::agent::Agent::feed_into) (the
//!   agent's own framer handles torn frames, whole frames decode
//!   zero-copy from the read scratch), wire replies append to the
//!   connection's reused [`OutBuf`](crate::reactor::OutBuf), and `now`
//!   is the wall clock. Throughput comes from syscall batching: one
//!   read drains a whole pipeline window, one write flushes all its
//!   replies.
//! * **Virtual time** ([`ServerMode::Virtual`]) — the inference mode.
//!   Ops arrive annotated with [`VtMsg::Submit`]; the server owns the
//!   link model and per-switch latency RNG (derived exactly as the
//!   in-memory testbed derives them at attach) and replays the
//!   testbed's arrival/start/done/ack arithmetic, answering each op
//!   with a [`VtMsg::Ack`] instead of the op's plain replies. See
//!   [`crate::vt`] for why.
//!
//! Backpressure: a connection whose write buffer is over its high
//! watermark is not read until it drains — the reactor never queues
//! unboundedly on behalf of a slow peer.

use crate::reactor::{NbConn, Pacer, READ_CHUNK};
use crate::vt::{VtMsg, VtOpTag, TANGO_VENDOR};
use ofwire::barrier::BarrierTracker;
use ofwire::codec::Framer;
use ofwire::message::Message;
use ofwire::types::{Dpid, Xid};
use simnet::link::Link;
use simnet::rng::DetRng;
use simnet::time::SimTime;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use switchsim::agent::{Agent, AgentOutput};
use switchsim::chan::{self, OpKind, VirtualTimeline};
use switchsim::profiles::SwitchProfile;
use switchsim::switch::Switch;

/// How the server interprets time and answers operations.
#[derive(Debug, Clone)]
pub enum ServerMode {
    /// Wall-clock agents answering with plain wire replies (benchmark
    /// and demo mode).
    Realtime,
    /// Virtual-time agents answering with [`VtMsg::Ack`] reports,
    /// modelling every control channel with `link` (inference mode).
    Virtual {
        /// The control-channel model applied to every switch.
        link: Link,
    },
}

/// Counters the server thread reports when it exits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub accepted: usize,
    /// Operations completed (virtual-time ops, or realtime messages
    /// dispatched to an agent).
    pub ops: u64,
    /// Protocol violations that closed a connection.
    pub errors: usize,
}

/// Handle to a running [`AgentServer`] thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<io::Result<ServerStats>>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the server to stop and waits for its thread, returning
    /// the final counters.
    pub fn shutdown(mut self) -> io::Result<ServerStats> {
        self.stop.store(true, Ordering::Relaxed);
        let join = self.join.take().expect("shutdown consumes the handle");
        join.join().expect("server thread panicked")
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// One roster slot: a switch a connection may claim with its hello.
struct RosterEntry {
    dpid: Dpid,
    /// Taken when a connection binds; a second hello for the same dpid
    /// is a protocol error.
    profile: Option<SwitchProfile>,
    seed: u64,
    link_rng: DetRng,
}

/// The switch-agent server. Construction happens via [`AgentServer::spawn`].
pub struct AgentServer;

impl AgentServer {
    /// Binds a loopback listener and spawns the reactor thread serving
    /// `roster`. `seed` plays the role of the testbed's master seed:
    /// per-switch datapath seeds and link-latency streams derive from
    /// it in roster order, exactly as
    /// [`Testbed::attach`](switchsim::harness::Testbed::attach) would
    /// derive them attaching the same dpids in the same order.
    ///
    /// The thread exits when [`ServerHandle::shutdown`] is called, or
    /// on its own once at least one connection was accepted and all
    /// connections have closed.
    pub fn spawn(
        seed: u64,
        roster: Vec<(Dpid, SwitchProfile)>,
        mode: ServerMode,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let mut master = DetRng::new(seed);
        let roster: Vec<RosterEntry> = roster
            .into_iter()
            .map(|(dpid, profile)| {
                let (seed, link_rng) = chan::attach_streams(&mut master, dpid);
                RosterEntry {
                    dpid,
                    profile: Some(profile),
                    seed,
                    link_rng,
                }
            })
            .collect();
        let join = std::thread::Builder::new()
            .name("tango-net-server".into())
            .spawn(move || run_server(&listener, roster, &mode, &stop_flag))?;
        Ok(ServerHandle {
            addr,
            stop,
            join: Some(join),
        })
    }
}

/// Per-connection protocol state.
enum SessState {
    /// Waiting for the binding hello.
    Handshake(Framer),
    /// Bound, wall-clock mode.
    Realtime(Box<RtState>),
    /// Bound, virtual-time mode.
    Virtual(Box<VtState>),
}

struct RtState {
    agent: Agent,
}

struct VtState {
    dpid: Dpid,
    agent: Agent,
    link: Link,
    rng: DetRng,
    timeline: VirtualTimeline,
    barriers: BarrierTracker<usize>,
    framer: Framer,
    /// The op currently being assembled, announced by its submit frame.
    cur: Option<CurOp>,
    /// Retired op buffer awaiting reuse.
    spare: Vec<u8>,
}

struct CurOp {
    token: u64,
    ready: SimTime,
    tag: VtOpTag,
    frames_left: u32,
    wire_len: u32,
    /// The op's frames, re-encoded verbatim as they arrive.
    bytes: Vec<u8>,
    /// Length of the first frame (sizes an echo's return leg).
    first_frame_len: usize,
    /// Xid and length of the most recent frame (a batch's barrier is
    /// its last frame).
    last_frame: (Xid, usize),
}

struct Session {
    conn: NbConn,
    state: SessState,
}

fn proto_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

fn run_server(
    listener: &TcpListener,
    mut roster: Vec<RosterEntry>,
    mode: &ServerMode,
    stop: &AtomicBool,
) -> io::Result<ServerStats> {
    let mut stats = ServerStats::default();
    let mut sessions: Vec<Session> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut outs: Vec<AgentOutput> = Vec::new();
    let mut pacer = Pacer::new();
    let epoch = Instant::now();
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(stats);
        }
        let mut progress = false;
        // Accept whoever is waiting (bounded per sweep by the listener
        // backlog; each accept is cheap).
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    sessions.push(Session {
                        conn: NbConn::new(stream)?,
                        state: SessState::Handshake(Framer::new()),
                    });
                    stats.accepted += 1;
                    progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Sweep every session: flush, read, dispatch.
        let mut i = 0;
        while i < sessions.len() {
            let sess = &mut sessions[i];
            // A write error means the peer vanished; reads will observe
            // the close below.
            let flushed = sess.conn.flush().unwrap_or(0);
            progress |= flushed > 0;
            let n = match sess.conn.read_into(&mut scratch) {
                Ok(n) => n,
                Err(_) => {
                    stats.errors += 1;
                    sessions.swap_remove(i);
                    continue;
                }
            };
            if n > 0 {
                progress = true;
                let now = SimTime(epoch.elapsed().as_nanos() as u64);
                match sess.on_bytes(&scratch[..n], now, &mut roster, mode, &mut outs, &mut stats) {
                    Ok(()) => {}
                    Err(_) => {
                        stats.errors += 1;
                        sessions.swap_remove(i);
                        continue;
                    }
                }
            }
            if sess.conn.is_closed() && sess.conn.out.pending() == 0 {
                sessions.swap_remove(i);
                progress = true;
                continue;
            }
            i += 1;
        }
        if sessions.is_empty() && stats.accepted > 0 {
            return Ok(stats);
        }
        if progress {
            pacer.progressed();
        } else {
            pacer.idle();
        }
    }
}

impl Session {
    fn on_bytes(
        &mut self,
        bytes: &[u8],
        now: SimTime,
        roster: &mut [RosterEntry],
        mode: &ServerMode,
        outs: &mut Vec<AgentOutput>,
        stats: &mut ServerStats,
    ) -> io::Result<()> {
        match &mut self.state {
            SessState::Handshake(framer) => {
                let mut input = bytes;
                let hello = framer
                    .next_message_from(&mut input)
                    .map_err(|_| proto_err("unparseable handshake"))?;
                let Some((_, msg)) = hello else {
                    return Ok(()); // hello still torn; keep waiting
                };
                let Message::Vendor { vendor, data } = msg else {
                    return Err(proto_err("first frame must be a vendor hello"));
                };
                if vendor != TANGO_VENDOR {
                    return Err(proto_err("unknown vendor id in hello"));
                }
                let VtMsg::Hello { dpid } =
                    VtMsg::decode(&data).map_err(|_| proto_err("bad hello payload"))?
                else {
                    return Err(proto_err("first vt message must be hello"));
                };
                let entry = roster
                    .iter_mut()
                    .find(|e| e.dpid.0 == dpid)
                    .ok_or_else(|| proto_err("hello for a dpid not in the roster"))?;
                let profile = entry
                    .profile
                    .take()
                    .ok_or_else(|| proto_err("dpid already claimed"))?;
                let agent = Agent::new(Switch::new(profile, entry.dpid, entry.seed));
                let mut leftover = framer.take_pending();
                leftover.extend_from_slice(input);
                self.state = match mode {
                    ServerMode::Realtime => SessState::Realtime(Box::new(RtState { agent })),
                    ServerMode::Virtual { link } => SessState::Virtual(Box::new(VtState {
                        dpid: entry.dpid,
                        agent,
                        link: *link,
                        rng: entry.link_rng.clone(),
                        timeline: VirtualTimeline::new(),
                        barriers: BarrierTracker::new(),
                        framer: Framer::new(),
                        cur: None,
                        spare: Vec::new(),
                    })),
                };
                if leftover.is_empty() {
                    Ok(())
                } else {
                    self.on_bytes(&leftover, now, roster, mode, outs, stats)
                }
            }
            SessState::Realtime(rt) => {
                outs.clear();
                rt.agent
                    .feed_into(bytes, now, outs)
                    .map_err(|_| proto_err("unparseable frame stream"))?;
                stats.ops += outs.len() as u64;
                for o in outs.drain(..) {
                    if let Some(reply) = o.reply {
                        reply.encode_frame_into(o.xid, self.conn.out.tail());
                    }
                }
                Ok(())
            }
            SessState::Virtual(vt) => {
                let acked = vt.on_bytes(bytes, outs, self.conn.out.tail())?;
                stats.ops += acked;
                Ok(())
            }
        }
    }
}

impl VtState {
    /// Consumes a chunk of the annotated op stream; appends acks to
    /// `out`. Returns the number of ops completed.
    fn on_bytes(
        &mut self,
        bytes: &[u8],
        outs: &mut Vec<AgentOutput>,
        out: &mut Vec<u8>,
    ) -> io::Result<u64> {
        let mut acked = 0;
        let mut input = bytes;
        loop {
            let msg = self
                .framer
                .next_message_from(&mut input)
                .map_err(|_| proto_err("unparseable frame stream"))?;
            let Some((header, msg)) = msg else {
                return Ok(acked);
            };
            if let Message::Vendor { vendor, data } = &msg {
                if *vendor != TANGO_VENDOR {
                    return Err(proto_err("unknown vendor id"));
                }
                let vt = VtMsg::decode(data).map_err(|_| proto_err("bad vt payload"))?;
                let VtMsg::Submit {
                    token,
                    ready_ns,
                    tag,
                    frames,
                    wire_len,
                } = vt
                else {
                    return Err(proto_err("unexpected vt message mid-stream"));
                };
                if self.cur.is_some() {
                    return Err(proto_err("submit while an op is still assembling"));
                }
                if frames == 0 {
                    return Err(proto_err("op with zero frames"));
                }
                let mut op_buf = std::mem::take(&mut self.spare);
                op_buf.clear();
                self.cur = Some(CurOp {
                    token,
                    ready: SimTime(ready_ns),
                    tag,
                    frames_left: frames,
                    wire_len,
                    bytes: op_buf,
                    first_frame_len: 0,
                    last_frame: (Xid(0), 0),
                });
                continue;
            }
            // An op frame: re-encode it verbatim into the op buffer
            // (encode∘decode is byte-identity for every message the
            // channel codec produces — the framing proptest pins this).
            let cur = self
                .cur
                .as_mut()
                .ok_or_else(|| proto_err("op frame without a submit"))?;
            let off = cur.bytes.len();
            msg.encode_frame_into(header.xid, &mut cur.bytes);
            let frame_len = cur.bytes.len() - off;
            if off == 0 {
                cur.first_frame_len = frame_len;
            }
            cur.last_frame = (header.xid, frame_len);
            cur.frames_left -= 1;
            if cur.frames_left == 0 {
                self.finish_op(outs, out)?;
                acked += 1;
            }
        }
    }

    /// All frames of the current op have arrived: replay the testbed's
    /// timing model, run the agent, and emit the ack.
    fn finish_op(&mut self, outs: &mut Vec<AgentOutput>, out: &mut Vec<u8>) -> io::Result<()> {
        let cur = self.cur.take().expect("finish_op follows a submit");
        if cur.bytes.len() != cur.wire_len as usize {
            return Err(proto_err("op length disagrees with its submit"));
        }
        let kind = match cur.tag {
            VtOpTag::FlowMod => OpKind::FlowMod,
            VtOpTag::Batch => {
                let (barrier_xid, barrier_len) = cur.last_frame;
                let size = cur.bytes.len() - barrier_len;
                self.barriers.register(barrier_xid, size);
                OpKind::Batch { size }
            }
            VtOpTag::Probe => OpKind::Probe,
            VtOpTag::Echo => OpKind::Echo {
                payload: cur.first_frame_len - ofwire::header::OFP_HEADER_LEN,
            },
        };
        let (up, down) =
            chan::draw_latencies(&self.link, &mut self.rng, self.dpid, kind, cur.bytes.len());
        let start = self.timeline.admit(cur.ready, up);
        outs.clear();
        self.agent
            .feed_into(&cur.bytes, start, outs)
            .map_err(|_| proto_err("op frames rejected by the agent"))?;
        let (cost, outcome) = chan::op_completion(kind, outs, &mut self.barriers);
        let (done, acked) = self.timeline.complete(start, cost, down);
        VtMsg::Ack {
            token: cur.token,
            done_ns: done.0,
            acked_ns: acked.0,
            outcome,
        }
        .to_message()
        .encode_frame_into(Xid(0), out);
        self.spare = cur.bytes;
        Ok(())
    }
}
