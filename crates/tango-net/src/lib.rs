//! # tango-net — the real-transport control plane
//!
//! Everything below `tango` so far exercises `ofwire` through in-memory
//! queues. This crate takes the same bytes onto actual TCP sockets: a
//! dependency-free, non-blocking reactor (a readiness loop over
//! `std::net` sockets — no `mio`, no `libc`) hosting N switch-agent
//! connections in one thread, and a controller endpoint with
//! per-connection state machines.
//!
//! ## Layout
//!
//! * [`reactor`] — the transport core: [`reactor::OutBuf`] (reused
//!   write buffers with backpressure watermarks), [`reactor::NbConn`]
//!   (one non-blocking connection), [`reactor::Pacer`] (idle backoff so
//!   the readiness loop never spins hot).
//! * [`vt`] — the virtual-time side channel, carried in OpenFlow
//!   vendor messages, that lets fleet inference over real sockets
//!   reproduce the in-memory testbed's timestamps bit-for-bit.
//! * [`server`] — [`server::AgentServer`]: hosts the switch agents,
//!   in wall-clock mode (benchmarks) or virtual-time mode (inference).
//! * [`control`] — [`control::TcpFleet`]: a
//!   [`ControlPath`](switchsim::control::ControlPath) over loopback
//!   TCP, so `tango::fleet::run_inference` runs unmodified against the
//!   agent server.
//! * [`mod@bench`] — the pipelined flow-mod load generator behind the
//!   `wire_bench` experiment arm.
//!
//! ## Design rules
//!
//! The hot loop follows three rules throughout:
//!
//! 1. **Zero-copy inbound framing** — sockets read into one shared
//!    scratch buffer; whole frames decode straight from it via
//!    [`Framer::next_message_from`](ofwire::codec::Framer::next_message_from)
//!    (server side: straight into
//!    [`Agent::feed_into`](switchsim::agent::Agent::feed_into)); only
//!    torn frames are ever copied.
//! 2. **Reused outbound buffers** — frames append to a per-connection
//!    [`reactor::OutBuf`] via
//!    [`encode_frame_into`](ofwire::message::Message::encode_frame_into);
//!    steady state allocates nothing per message, and one `write(2)`
//!    flushes a whole pipeline window (syscall batching).
//! 3. **Explicit backpressure** — a connection whose write buffer
//!    crosses its high watermark stops being read until it drains below
//!    the low watermark. No queue in this crate is unbounded.

pub mod bench;
pub mod control;
pub mod reactor;
pub mod server;
pub mod vt;

/// Convenient glob-import of the types most callers need.
pub mod prelude {
    pub use crate::bench::{run_wire_bench, WireBenchConfig, WireBenchResult};
    pub use crate::control::TcpFleet;
    pub use crate::reactor::{NbConn, OutBuf, Pacer, Watermark};
    pub use crate::server::{
        shard_of, AgentServer, ServerConfig, ServerHandle, ServerMode, ServerStats, ShardStats,
    };
}
