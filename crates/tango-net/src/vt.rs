//! The virtual-time side channel: how fleet inference over real TCP
//! reproduces the in-memory testbed bit-for-bit.
//!
//! Inference results depend on virtual timestamps (RTT clustering,
//! installation-time curves), so a wall-clock transport could never
//! match the testbed's `TangoDb` byte-for-byte. Instead, the
//! controller annotates every operation with its virtual *ready* time,
//! and the agent server — which owns the link model and the per-switch
//! latency RNG, derived exactly as
//! [`chan::attach_streams`](switchsim::chan::attach_streams) derives
//! them — recomputes the arrival/start/done/ack arithmetic with
//! [`chan::VirtualTimeline`](switchsim::chan::VirtualTimeline) and
//! ships the resulting timestamps back with the typed outcome.
//!
//! The annotations ride *inside* the OpenFlow stream as vendor
//! messages ([`Message::Vendor`]) under [`TANGO_VENDOR`], so framing,
//! byte order, and the one-TCP-stream-per-switch discipline all stay
//! protocol-faithful: a [`VtMsg::Submit`] frame precedes each op's
//! frames, and a [`VtMsg::Ack`] frame comes back in place of the op's
//! plain replies (which the server suppresses in virtual-time mode —
//! the controller already gets their meaning in the typed outcome).

use ofwire::error::{Result, WireError};
use ofwire::message::Message;
use switchsim::control::{OpOutcome, OpResult};
use switchsim::entry::EntryId;
use switchsim::pipeline::Hit;

/// Vendor/experimenter id owning the virtual-time payloads ("TANG").
pub const TANGO_VENDOR: u32 = 0x5441_4e47;

/// Wire tag of the operation kind inside a [`VtMsg::Submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VtOpTag {
    /// One flow-mod frame.
    FlowMod = 1,
    /// Flow-mod frames fenced by a trailing barrier frame.
    Batch = 2,
    /// One `packet_out` probe frame.
    Probe = 3,
    /// One `echo_request` frame.
    Echo = 4,
}

impl VtOpTag {
    fn from_u8(v: u8) -> Result<VtOpTag> {
        Ok(match v {
            1 => VtOpTag::FlowMod,
            2 => VtOpTag::Batch,
            3 => VtOpTag::Probe,
            4 => VtOpTag::Echo,
            other => return Err(WireError::UnknownMessageType(other)),
        })
    }
}

/// A virtual-time side-channel message.
#[derive(Debug, Clone, PartialEq)]
pub enum VtMsg {
    /// First frame on every connection: binds it to a switch.
    Hello {
        /// Datapath id of the switch this connection speaks for.
        dpid: u64,
    },
    /// Announces the next operation: the following `frames` OpenFlow
    /// frames (totalling `wire_len` bytes) form one op submitted at
    /// virtual time `ready_ns`.
    Submit {
        /// Dense token identifying the op's completion.
        token: u64,
        /// Controller-side virtual ready time, in nanoseconds.
        ready_ns: u64,
        /// What the frames form.
        tag: VtOpTag,
        /// Number of OpenFlow frames belonging to this op.
        frames: u32,
        /// Total encoded length of those frames, in bytes.
        wire_len: u32,
    },
    /// The server's completion report for one submitted op.
    Ack {
        /// Token from the matching [`VtMsg::Submit`].
        token: u64,
        /// Virtual time the switch finished processing.
        done_ns: u64,
        /// Virtual time the controller observes the result.
        acked_ns: u64,
        /// The typed outcome.
        outcome: OpOutcome,
    },
}

const SUB_HELLO: u8 = 1;
const SUB_SUBMIT: u8 = 2;
const SUB_ACK: u8 = 3;

const OUT_FLOW_MOD_OK: u8 = 0;
const OUT_FLOW_MOD_FULL: u8 = 1;
const OUT_BATCH: u8 = 2;
const OUT_PROBE_MISS: u8 = 3;
const OUT_PROBE_TABLE: u8 = 4;
const OUT_ECHO: u8 = 5;

fn need(data: &[u8], n: usize, what: &'static str) -> Result<()> {
    if data.len() < n {
        return Err(WireError::Truncated {
            what,
            needed: n,
            available: data.len(),
        });
    }
    Ok(())
}

fn u32_at(data: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([data[off], data[off + 1], data[off + 2], data[off + 3]])
}

fn u64_at(data: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&data[off..off + 8]);
    u64::from_be_bytes(b)
}

impl VtMsg {
    /// Wraps this message in its OpenFlow vendor frame.
    #[must_use]
    pub fn to_message(&self) -> Message {
        let mut data = Vec::with_capacity(40);
        match self {
            VtMsg::Hello { dpid } => {
                data.push(SUB_HELLO);
                data.extend_from_slice(&dpid.to_be_bytes());
            }
            VtMsg::Submit {
                token,
                ready_ns,
                tag,
                frames,
                wire_len,
            } => {
                data.push(SUB_SUBMIT);
                data.extend_from_slice(&token.to_be_bytes());
                data.extend_from_slice(&ready_ns.to_be_bytes());
                data.push(*tag as u8);
                data.extend_from_slice(&frames.to_be_bytes());
                data.extend_from_slice(&wire_len.to_be_bytes());
            }
            VtMsg::Ack {
                token,
                done_ns,
                acked_ns,
                outcome,
            } => {
                data.push(SUB_ACK);
                data.extend_from_slice(&token.to_be_bytes());
                data.extend_from_slice(&done_ns.to_be_bytes());
                data.extend_from_slice(&acked_ns.to_be_bytes());
                encode_outcome(outcome, &mut data);
            }
        }
        Message::Vendor {
            vendor: TANGO_VENDOR,
            data,
        }
    }

    /// Parses a vendor payload previously built by [`VtMsg::to_message`].
    pub fn decode(data: &[u8]) -> Result<VtMsg> {
        need(data, 1, "vt subtype")?;
        match data[0] {
            SUB_HELLO => {
                need(data, 9, "vt hello")?;
                Ok(VtMsg::Hello {
                    dpid: u64_at(data, 1),
                })
            }
            SUB_SUBMIT => {
                need(data, 26, "vt submit")?;
                Ok(VtMsg::Submit {
                    token: u64_at(data, 1),
                    ready_ns: u64_at(data, 9),
                    tag: VtOpTag::from_u8(data[17])?,
                    frames: u32_at(data, 18),
                    wire_len: u32_at(data, 22),
                })
            }
            SUB_ACK => {
                need(data, 26, "vt ack")?;
                Ok(VtMsg::Ack {
                    token: u64_at(data, 1),
                    done_ns: u64_at(data, 9),
                    acked_ns: u64_at(data, 17),
                    outcome: decode_outcome(&data[25..])?,
                })
            }
            other => Err(WireError::UnknownMessageType(other)),
        }
    }
}

fn encode_outcome(outcome: &OpOutcome, data: &mut Vec<u8>) {
    match outcome {
        OpOutcome::FlowMod(OpResult::Ok) => data.push(OUT_FLOW_MOD_OK),
        OpOutcome::FlowMod(OpResult::TableFull) => data.push(OUT_FLOW_MOD_FULL),
        OpOutcome::Batch { ok, failed } => {
            data.push(OUT_BATCH);
            data.extend_from_slice(&(*ok as u32).to_be_bytes());
            data.extend_from_slice(&(*failed as u32).to_be_bytes());
        }
        OpOutcome::Probe(Hit::Miss) => data.push(OUT_PROBE_MISS),
        OpOutcome::Probe(Hit::Table { level, entry }) => {
            data.push(OUT_PROBE_TABLE);
            data.extend_from_slice(&(*level as u32).to_be_bytes());
            data.extend_from_slice(&entry.0.to_be_bytes());
        }
        OpOutcome::Echo => data.push(OUT_ECHO),
    }
}

fn decode_outcome(data: &[u8]) -> Result<OpOutcome> {
    need(data, 1, "vt outcome")?;
    Ok(match data[0] {
        OUT_FLOW_MOD_OK => OpOutcome::FlowMod(OpResult::Ok),
        OUT_FLOW_MOD_FULL => OpOutcome::FlowMod(OpResult::TableFull),
        OUT_BATCH => {
            need(data, 9, "vt batch outcome")?;
            OpOutcome::Batch {
                ok: u32_at(data, 1) as usize,
                failed: u32_at(data, 5) as usize,
            }
        }
        OUT_PROBE_MISS => OpOutcome::Probe(Hit::Miss),
        OUT_PROBE_TABLE => {
            need(data, 13, "vt probe outcome")?;
            OpOutcome::Probe(Hit::Table {
                level: u32_at(data, 1) as usize,
                entry: EntryId(u64_at(data, 5)),
            })
        }
        OUT_ECHO => OpOutcome::Echo,
        other => return Err(WireError::UnknownMessageType(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofwire::types::Xid;

    fn roundtrip(msg: VtMsg) {
        let frame = msg.to_message().to_bytes(Xid(0));
        let (_, decoded) = Message::from_bytes(&frame).unwrap();
        let Message::Vendor { vendor, data } = decoded else {
            panic!("vt messages ride vendor frames");
        };
        assert_eq!(vendor, TANGO_VENDOR);
        assert_eq!(VtMsg::decode(&data).unwrap(), msg);
    }

    #[test]
    fn every_vt_message_roundtrips() {
        roundtrip(VtMsg::Hello { dpid: 42 });
        roundtrip(VtMsg::Submit {
            token: u64::MAX - 3,
            ready_ns: 123_456_789,
            tag: VtOpTag::Batch,
            frames: 257,
            wire_len: 18_504,
        });
        for outcome in [
            OpOutcome::FlowMod(OpResult::Ok),
            OpOutcome::FlowMod(OpResult::TableFull),
            OpOutcome::Batch { ok: 7, failed: 3 },
            OpOutcome::Probe(Hit::Miss),
            OpOutcome::Probe(Hit::Table {
                level: 1,
                entry: EntryId(0xdead_beef_cafe),
            }),
            OpOutcome::Echo,
        ] {
            roundtrip(VtMsg::Ack {
                token: 9,
                done_ns: 1_000,
                acked_ns: 2_000,
                outcome,
            });
        }
    }

    #[test]
    fn junk_payloads_are_typed_errors() {
        assert!(VtMsg::decode(&[]).is_err());
        assert!(VtMsg::decode(&[99]).is_err());
        assert!(VtMsg::decode(&[SUB_SUBMIT, 0, 0]).is_err());
    }
}
