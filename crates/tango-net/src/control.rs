//! [`TcpFleet`]: a [`ControlPath`] over real loopback TCP.
//!
//! One connection per switch, each speaking the annotated op stream of
//! [`crate::vt`] to an [`AgentServer`](crate::server::AgentServer) in
//! virtual-time mode. Everything above the trait —
//! `tango::fleet::run_inference`, the probe drivers, the schedulers —
//! runs unmodified, and produces the same virtual timestamps and
//! outcomes as the in-memory testbed (per-switch op encoding, xid
//! discipline, latency draws, and timeline arithmetic are all shared
//! code in [`switchsim::chan`]).
//!
//! ## Ordering relaxation
//!
//! The in-memory testbed delivers completions in global virtual-time
//! order. `TcpFleet` preserves *per-switch* order (each connection is
//! FIFO) but delivers across switches in arrival order, which a real
//! transport cannot avoid. The driver runner files completions by
//! token, and each driver's behaviour depends only on its own switch's
//! completions, so inference outcomes are unaffected — this is the
//! documented contract relaxation of taking the control path onto real
//! sockets.
//!
//! The controller clock is correspondingly lazy: it advances only on
//! [`warp_to`](ControlPath::warp_to) (which the drivers call at the
//! instants a synchronous loop would have reached), never as a side
//! effect of delivering a completion.

use crate::reactor::{NbConn, Pacer, READ_CHUNK};
use crate::vt::{VtMsg, VtOpTag, TANGO_VENDOR};
use ofwire::codec::Framer;
use ofwire::message::Message;
use ofwire::types::{Dpid, Xid};
use simnet::time::SimTime;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpStream};
use switchsim::chan::{ChanCodec, OpKind};
use switchsim::control::{Completion, ControlOp, ControlPath, OpToken};

/// One switch's connection: socket, op codec (xids + barrier fences,
/// identical state to the testbed's per-switch codec), and ack framer.
struct FleetConn {
    dpid: Dpid,
    conn: NbConn,
    codec: ChanCodec,
    framer: Framer,
}

/// A fleet control path over loopback TCP. See the module docs.
pub struct TcpFleet {
    conns: Vec<FleetConn>,
    by_dpid: HashMap<Dpid, usize>,
    clock: SimTime,
    next_seq: u64,
    inflight: usize,
    /// Completions received but not yet delivered, by token sequence.
    done: BTreeMap<u64, Completion>,
    /// Delivery order for [`ControlPath::next_completion`] (per-switch
    /// arrival order; tokens [`wait_for`](ControlPath::wait_for) takes
    /// out of turn are removed from here too).
    arrival: VecDeque<u64>,
    /// Shared scratch buffers (read chunk + op encode), reused per call.
    scratch: Vec<u8>,
    enc: Vec<u8>,
    pacer: Pacer,
}

impl TcpFleet {
    /// Connects one stream per dpid, in order, to a virtual-time
    /// [`AgentServer`](crate::server::AgentServer) at `addr`, and sends
    /// each connection's binding hello.
    ///
    /// The dpid order must match the server's roster order only in so
    /// far as the *server* derives streams in roster order — connections
    /// may bind in any order, so this just takes the dpids the caller
    /// wants to drive.
    pub fn connect(addr: SocketAddr, dpids: &[Dpid]) -> io::Result<TcpFleet> {
        let mut conns = Vec::with_capacity(dpids.len());
        let mut by_dpid = HashMap::with_capacity(dpids.len());
        for &dpid in dpids {
            let mut conn = NbConn::new(TcpStream::connect(addr)?)?;
            VtMsg::Hello { dpid: dpid.0 }
                .to_message()
                .encode_frame_into(Xid(0), conn.out.tail());
            conn.flush()?;
            by_dpid.insert(dpid, conns.len());
            conns.push(FleetConn {
                dpid,
                conn,
                codec: ChanCodec::new(),
                framer: Framer::new(),
            });
        }
        Ok(TcpFleet {
            conns,
            by_dpid,
            clock: SimTime::ZERO,
            next_seq: 0,
            inflight: 0,
            done: BTreeMap::new(),
            arrival: VecDeque::new(),
            scratch: vec![0u8; READ_CHUNK],
            enc: Vec::new(),
            pacer: Pacer::new(),
        })
    }

    /// One sweep over every connection: flush pending output, read, and
    /// file any acks. Transport failures panic — the trait has no error
    /// channel, and on loopback an io error means the server died, which
    /// no retry repairs.
    fn pump(&mut self) {
        let mut progress = false;
        for fc in &mut self.conns {
            progress |= fc.conn.flush().expect("loopback write failed") > 0;
            let n = fc
                .conn
                .read_into(&mut self.scratch)
                .expect("loopback read failed");
            if n == 0 {
                if fc.conn.is_closed() {
                    panic!("agent server closed the connection for {:?}", fc.dpid);
                }
                continue;
            }
            progress = true;
            let mut input = &self.scratch[..n];
            while let Some((_, msg)) = fc
                .framer
                .next_message_from(&mut input)
                .expect("unparseable ack stream")
            {
                let Message::Vendor { vendor, data } = msg else {
                    panic!("virtual-time server sent a plain reply: {msg:?}");
                };
                assert_eq!(vendor, TANGO_VENDOR, "foreign vendor frame from server");
                let VtMsg::Ack {
                    token,
                    done_ns,
                    acked_ns,
                    outcome,
                } = VtMsg::decode(&data).expect("bad ack payload")
                else {
                    panic!("controller expects only ack frames");
                };
                self.inflight -= 1;
                self.done.insert(
                    token,
                    Completion {
                        token: OpToken::from_seq(token),
                        dpid: fc.dpid,
                        done_at: SimTime(done_ns),
                        acked_at: SimTime(acked_ns),
                        outcome,
                    },
                );
                self.arrival.push_back(token);
            }
        }
        if progress {
            self.pacer.progressed();
        } else {
            self.pacer.idle(self.inflight > 0);
        }
    }
}

impl ControlPath for TcpFleet {
    fn now(&self) -> SimTime {
        self.clock
    }

    fn submit(&mut self, dpid: Dpid, op: ControlOp, ready_at: SimTime) -> OpToken {
        assert!(ready_at >= self.clock, "ready_at precedes the clock");
        let idx = *self
            .by_dpid
            .get(&dpid)
            .unwrap_or_else(|| panic!("submit to unconnected switch {dpid:?}"));
        let token = self.next_seq;
        self.next_seq += 1;
        let frames = OpKind::frames_of(&op);
        self.enc.clear();
        let fc = &mut self.conns[idx];
        let kind = fc.codec.encode_op(op, &mut self.enc);
        let tag = match kind {
            OpKind::FlowMod => VtOpTag::FlowMod,
            OpKind::Batch { .. } => VtOpTag::Batch,
            OpKind::Probe => VtOpTag::Probe,
            OpKind::Echo { .. } => VtOpTag::Echo,
        };
        VtMsg::Submit {
            token,
            ready_ns: ready_at.0,
            tag,
            frames: frames as u32,
            wire_len: self.enc.len() as u32,
        }
        .to_message()
        .encode_frame_into(Xid(0), fc.conn.out.tail());
        fc.conn.out.tail().extend_from_slice(&self.enc);
        // Start the bytes moving now; the pump finishes the job.
        fc.conn.flush().expect("loopback write failed");
        self.inflight += 1;
        OpToken::from_seq(token)
    }

    fn next_completion(&mut self) -> Option<Completion> {
        loop {
            if let Some(seq) = self.arrival.pop_front() {
                let c = self
                    .done
                    .remove(&seq)
                    .expect("arrival entries are backed by the store");
                return Some(c);
            }
            if self.inflight == 0 {
                return None;
            }
            self.pump();
        }
    }

    fn wait_for(&mut self, token: OpToken) -> Completion {
        loop {
            if let Some(c) = self.done.remove(&token.seq()) {
                self.arrival.retain(|s| *s != token.seq());
                return c;
            }
            assert!(self.inflight > 0, "token is not in flight");
            self.pump();
        }
    }

    fn warp_to(&mut self, t: SimTime) {
        assert!(t >= self.clock, "clock warps only forward");
        self.clock = t;
    }
}
