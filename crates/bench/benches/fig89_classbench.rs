//! Criterion bench for the Figure 8/9 experiments: ClassBench
//! installation under the four priority/order schemes.

use bench::experiments::fig89;
use criterion::{criterion_group, criterion_main, Criterion};
use workloads::classbench::ClassBenchConfig;

fn bench_fig89(c: &mut Criterion) {
    let cfg = ClassBenchConfig {
        rules: 300,
        levels: 30,
        cluster_depth: 3,
        seed: 0x89,
    };
    let mut g = c.benchmark_group("fig89");
    g.sample_size(10);
    g.bench_function("fig8_ovs_four_schemes", |b| {
        b.iter(|| fig89::run(fig89::Target::Ovs, "bench", &cfg, 1))
    });
    g.bench_function("fig9_switch1_four_schemes", |b| {
        b.iter(|| fig89::run(fig89::Target::Switch1, "bench", &cfg, 1))
    });
    g.finish();
}

criterion_group!(benches, bench_fig89);
criterion_main!(benches);
