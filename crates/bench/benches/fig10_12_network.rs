//! Criterion benches for the network-wide experiments: the Fig 10
//! triangle-testbed scenarios, the Fig 11 priority strategies, and the
//! Fig 12 B4 re-allocation.

use bench::experiments::{fig10, fig11, fig12};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_network(c: &mut Criterion) {
    let mut g = c.benchmark_group("network");
    g.sample_size(10);
    let scens = fig10::scenarios(100, 200);
    for arm in fig10::Arm::all() {
        g.bench_function(format!("fig10_te1_{}", arm.label()), |b| {
            b.iter(|| fig10::makespan_s(&scens[1], arm, 7))
        });
    }
    g.bench_function("fig11_enforcement_vs_dionysus", |b| {
        b.iter(|| {
            let d = fig11::makespan_s(true, 1, 200, fig11::Arm::Dionysus, 3);
            let e = fig11::makespan_s(true, 1, 200, fig11::Arm::PriorityEnforcement, 3);
            (d, e)
        })
    });
    g.bench_function("fig12_b4_both_arms", |b| {
        b.iter(|| fig12::makespans_s(150, 5))
    });
    g.finish();
}

criterion_group!(benches, bench_network);
criterion_main!(benches);
