//! Criterion bench for the Table 1 experiment: black-box capacity
//! discovery across the four switch profiles.

use bench::experiments::table1;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("capacity_discovery_all_switches", |b| {
        b.iter(|| {
            let rows = table1::run(2048);
            assert_eq!(rows.len(), 4);
            rows
        })
    });
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
