//! Criterion bench for fleet-scale inference: how the host-CPU cost of
//! `tango::fleet::run_inference` scales with fleet width, against the
//! sequential per-switch baseline at the same width.

use criterion::{criterion_group, criterion_main, Criterion};
use ofwire::types::Dpid;
use switchsim::cache::CachePolicy;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::fleet::{run_inference, FleetJob};
use tango::infer_size::{probe_sizes, SizeProbeConfig};
use tango::pattern::RuleKind;
use tango::probe::ProbingEngine;

const TCAM: u64 = 128;

fn policies() -> [CachePolicy; 4] {
    [
        CachePolicy::fifo(),
        CachePolicy::lru(),
        CachePolicy::lfu(),
        CachePolicy::priority(),
    ]
}

fn build(width: usize) -> Testbed {
    let mut tb = Testbed::new(3);
    let policies = policies();
    for i in 0..width {
        let policy = policies[i % policies.len()].clone();
        tb.attach_default(
            Dpid(i as u64 + 1),
            SwitchProfile::generic_cached(TCAM, policy),
        );
    }
    tb
}

fn config(dpid: Dpid) -> SizeProbeConfig {
    SizeProbeConfig {
        max_flows: (TCAM as usize) * 2,
        seed: 0xf1ee7 ^ dpid.0,
        ..SizeProbeConfig::default()
    }
}

fn bench_fleet(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet_inference");
    g.sample_size(10);
    for width in [1usize, 2, 4, 8] {
        g.bench_function(format!("fleet_size_x{width}"), |b| {
            b.iter(|| {
                let mut tb = build(width);
                let jobs: Vec<FleetJob> = (1..=width as u64)
                    .map(|d| FleetJob::size(Dpid(d), RuleKind::L3, config(Dpid(d))))
                    .collect();
                run_inference(&mut tb, &jobs)
            })
        });
        g.bench_function(format!("sequential_size_x{width}"), |b| {
            b.iter(|| {
                let mut tb = build(width);
                (1..=width as u64)
                    .map(|d| {
                        let mut eng = ProbingEngine::new(&mut tb, Dpid(d), RuleKind::L3);
                        probe_sizes(&mut eng, &config(Dpid(d)))
                    })
                    .collect::<Vec<_>>()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
