//! Criterion bench for the Figure 2 experiments: tiered path delays on
//! OVS, Switch #1, and Switch #2.

use bench::experiments::fig2;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("fig2a_ovs_three_tier", |b| b.iter(|| fig2::fig2a(80, 160)));
    g.bench_function("fig2b_switch1_three_tier", |b| {
        b.iter(|| fig2::fig2b(350, 550))
    });
    g.bench_function("fig2c_switch2_two_tier", |b| {
        b.iter(|| fig2::fig2c(100, 550))
    });
    g.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
