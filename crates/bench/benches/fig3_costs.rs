//! Criterion benches for the Figure 3 experiments: op-permutation
//! batches (3a), add vs modify (3b), and priority orderings (3c).

use bench::experiments::{fig3a, fig3b, fig3c};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("fig3a_six_permutations", |b| {
        b.iter(|| fig3a::run(200, 40, 1))
    });
    g.bench_function("fig3b_add_vs_mod", |b| b.iter(|| fig3b::run(&[50, 200])));
    g.bench_function("fig3c_priority_orders", |b| b.iter(|| fig3c::run(&[200])));
    g.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
