//! Criterion benches for the inference algorithms: Algorithm 1 (size)
//! and Algorithm 2 (policy), plus the clustering ablation arms.

use criterion::{criterion_group, criterion_main, Criterion};
use ofwire::types::Dpid;
use switchsim::cache::CachePolicy;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::infer_policy::{probe_policy, PolicyProbeConfig};
use tango::infer_size::{probe_sizes, ClusterMethod, SizeProbeConfig};
use tango::pattern::RuleKind;
use tango::probe::ProbingEngine;

fn bench_inference(c: &mut Criterion) {
    let mut g = c.benchmark_group("inference");
    g.sample_size(10);
    for method in [ClusterMethod::Gaps, ClusterMethod::KMeans] {
        g.bench_function(format!("algorithm1_size_256_{method:?}"), |b| {
            b.iter(|| {
                let mut tb = Testbed::new(1);
                tb.attach_default(
                    Dpid(1),
                    SwitchProfile::generic_cached(256, CachePolicy::fifo()),
                );
                let mut eng = ProbingEngine::new(&mut tb, Dpid(1), RuleKind::L3);
                let cfg = SizeProbeConfig {
                    max_flows: 512,
                    trials_per_level: 200,
                    cluster_method: method,
                    ..SizeProbeConfig::default()
                };
                probe_sizes(&mut eng, &cfg)
            })
        });
    }
    for (name, policy) in [
        ("fifo", CachePolicy::fifo()),
        ("lru", CachePolicy::lru()),
        ("priority_lru", CachePolicy::priority_then_lru()),
    ] {
        g.bench_function(format!("algorithm2_policy_{name}"), |b| {
            b.iter(|| {
                let mut tb = Testbed::new(2);
                tb.attach_default(Dpid(1), SwitchProfile::generic_cached(60, policy.clone()));
                let mut eng = ProbingEngine::new(&mut tb, Dpid(1), RuleKind::L3);
                probe_policy(&mut eng, 60, &PolicyProbeConfig::default())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
