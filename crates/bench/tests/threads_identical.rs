//! Determinism gate: `experiments --quick all` must produce
//! byte-identical `results/` artifacts at `--threads 4` and
//! `--threads 1`. This is the contract that makes the `bench::par`
//! fan-out safe to use everywhere — parallelism may change wall-clock,
//! never output.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::Command;

fn run_suite(out_dir: &Path, threads: usize) {
    let status = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["--quick", "--threads", &threads.to_string(), "all"])
        .env("TANGO_RESULTS_DIR", out_dir)
        .env_remove("TANGO_BENCH_THREADS")
        .status()
        .expect("spawn experiments binary");
    assert!(
        status.success(),
        "experiments run failed at --threads {threads}"
    );
}

/// Every artifact in `dir`, name → bytes.
fn artifacts(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .expect("read results dir")
        .map(|e| {
            let e = e.expect("dir entry");
            let name = e.file_name().to_string_lossy().into_owned();
            let bytes = std::fs::read(e.path()).expect("read artifact");
            (name, bytes)
        })
        .collect()
}

#[test]
fn quick_all_is_byte_identical_across_thread_counts() {
    let base = std::env::temp_dir().join(format!("tango_det_{}", std::process::id()));
    let seq_dir = base.join("threads1");
    let par_dir = base.join("threads4");
    std::fs::create_dir_all(&seq_dir).expect("mkdir");
    std::fs::create_dir_all(&par_dir).expect("mkdir");

    run_suite(&seq_dir, 1);
    run_suite(&par_dir, 4);

    let seq = artifacts(&seq_dir);
    let par = artifacts(&par_dir);
    assert!(!seq.is_empty(), "sequential run wrote no artifacts");
    assert_eq!(
        seq.keys().collect::<Vec<_>>(),
        par.keys().collect::<Vec<_>>(),
        "artifact sets differ"
    );
    for (name, seq_bytes) in &seq {
        assert_eq!(
            seq_bytes, &par[name],
            "{name} differs between --threads 1 and --threads 4"
        );
    }

    // BENCH_experiments.json lands next to the results dir (timings are
    // run-dependent, so it must stay out of the byte-diffed set).
    assert!(base.join("BENCH_experiments.json").exists());
    assert!(!seq.contains_key("BENCH_experiments.json"));

    let _ = std::fs::remove_dir_all(&base);
}
