//! Determinism gate for the telemetry exporters: the Chrome traces and
//! metrics the traced experiments emit must be byte-identical across
//! worker-thread counts and repeated runs, and turning tracing on must
//! not change the experiment results themselves.
//!
//! Everything lives in one `#[test]` because `bench::par::set_threads`
//! is process-global — parallel test functions would race on it.

use bench::experiments::{fig11, sched_sweep};
use bench::par::set_threads;
use bench::tracecheck::check;

#[test]
fn traces_are_byte_identical_across_thread_counts() {
    // fig11 at test scale: 4 scenarios × 3 arms.
    set_threads(1);
    let (fig_t1, trace_t1, metrics_t1) = fig11::run_traced(120);
    set_threads(4);
    let (fig_t4, trace_t4, metrics_t4) = fig11::run_traced(120);
    let untraced = fig11::run(120);
    set_threads(0);

    assert_eq!(
        trace_t1, trace_t4,
        "fig11 trace differs between 1 and 4 worker threads"
    );
    assert_eq!(metrics_t1, metrics_t4, "fig11 metrics differ");
    assert_eq!(fig_t1.to_csv(), fig_t4.to_csv(), "fig11 figure differs");
    assert_eq!(
        fig_t1.to_csv(),
        untraced.to_csv(),
        "tracing must not change the figure"
    );

    // The emitted trace is Perfetto-loadable: one process per cell,
    // spans on the scheduler track and on per-switch tracks.
    let stats = check(&trace_t1).expect("fig11 trace is structurally valid");
    assert_eq!(stats.processes, 12, "one pid per fig11 cell");
    assert!(
        stats.complete_events > 0 && stats.span_tracks > stats.processes,
        "expected spans on more than one track per cell: {stats:?}"
    );
    assert!(trace_t1.contains("\"name\":\"scheduler\""));
    assert!(trace_t1.contains("switch 0 (dpid 1)"));
    assert!(trace_t1.contains("\"name\":\"execute\""));
    assert!(trace_t1.contains("\"name\":\"flow_mod\""));

    // The metrics report renders deterministically and carries the
    // cross-layer counters the wiring promises.
    let text = metrics_t1.render_text();
    for key in [
        "sched/issued",
        "switch/ops_done",
        "op/flow_mod",
        "pipeline/adds_hw",
        "sim/events",
        "switch/queue_depth",
    ] {
        assert!(text.contains(key), "metrics report lacks {key}:\n{text}");
    }

    // Repeat for the scheduler sweep (clone-per-cell path).
    set_threads(1);
    let (rows_t1, sweep_t1, sweep_m1) = sched_sweep::run_traced(200);
    set_threads(4);
    let (rows_t4, sweep_t4, sweep_m4) = sched_sweep::run_traced(200);
    set_threads(0);
    assert_eq!(
        sweep_t1, sweep_t4,
        "sched_sweep trace differs between 1 and 4 worker threads"
    );
    assert_eq!(sweep_m1, sweep_m4, "sched_sweep metrics differ");
    assert_eq!(
        sched_sweep::render(&rows_t1),
        sched_sweep::render(&rows_t4),
        "sched_sweep rows differ"
    );
    assert_eq!(
        sched_sweep::render(&rows_t1),
        sched_sweep::render(&sched_sweep::run(200)),
        "tracing must not change the sweep rows"
    );
    let stats = check(&sweep_t1).expect("sched_sweep trace is structurally valid");
    assert!(stats.processes >= 4, "one pid per registered scheduler");
    assert!(sweep_t1.contains("sched_sweep dionysus"));
}
