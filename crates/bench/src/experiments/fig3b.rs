//! Figure 3(b) — add vs modify cost as the batch size grows, on
//! Switch #1 and OVS.
//!
//! Adds insert into a priority-sorted TCAM in the worst-case
//! (descending-priority) order, so every insertion shifts the resident
//! entries — superlinear totals; modifies rewrite entries in place
//! (linear in count, with a mild table-walk term). The paper observes
//! "modifying 5000 entries could be six times faster than adding new
//! flows"; OVS is linear and fast in both cases.

use crate::par::par_map;
use ofwire::types::Dpid;
use simnet::trace::Figure;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::pattern::{PriorityOrder, RuleKind, TangoPattern};
use tango::probe::ProbingEngine;

fn measure(profile: SwitchProfile, n: usize, seed: u64) -> (f64, f64) {
    // Add arm: fresh switch, worst-case descending-priority insertion.
    let add_s = {
        let mut tb = Testbed::new(seed);
        let dpid = Dpid(1);
        tb.attach_default(dpid, profile.clone());
        let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
        let pat = TangoPattern::priority_insertion(n, PriorityOrder::Descending, RuleKind::L3);
        eng.run(&pat)
            .expect("pattern runs")
            .install_time()
            .as_secs_f64()
    };
    // Mod arm: preinstall n (constant priority), then modify all n.
    let mod_s = {
        let mut tb = Testbed::new(seed ^ 1);
        let dpid = Dpid(1);
        tb.attach_default(dpid, profile);
        let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
        eng.run(&TangoPattern::priority_insertion(
            n,
            PriorityOrder::Same,
            RuleKind::L3,
        ))
        .expect("preinstall runs");
        eng.run(&TangoPattern::modify_batch(n, 1000, RuleKind::L3))
            .expect("modify batch runs")
            .install_time()
            .as_secs_f64()
    };
    (add_s, mod_s)
}

/// Runs the experiment over the given batch sizes.
#[must_use]
pub fn run(sizes: &[usize]) -> Figure {
    let mut fig = Figure::new(
        "fig3b: Add vs Modify Flow Delay",
        "number of flows",
        "installation time (s)",
    );
    fig.series_mut("add flow (HW switch #1)");
    fig.series_mut("mod flow (HW switch #1)");
    fig.series_mut("add flow (OVS)");
    fig.series_mut("mod flow (OVS)");
    // Each (size, profile) cell builds its own pair of testbeds with a
    // fixed seed — fan the grid out, then fill the series in size order.
    let cells: Vec<(usize, bool)> = sizes
        .iter()
        .flat_map(|&n| [(n, true), (n, false)])
        .collect();
    let measured = par_map(cells, |(n, hw)| {
        let profile = if hw {
            SwitchProfile::vendor1()
        } else {
            SwitchProfile::ovs()
        };
        measure(profile, n, 0x3b)
    });
    for (i, &n) in sizes.iter().enumerate() {
        let (hw_add, hw_mod) = measured[i * 2];
        let (sw_add, sw_mod) = measured[i * 2 + 1];
        fig.series[0].push(n as f64, hw_add);
        fig.series[1].push(n as f64, hw_mod);
        fig.series[2].push(n as f64, sw_add);
        fig.series[3].push(n as f64, sw_mod);
    }
    fig
}

/// The batch sizes the paper sweeps (20…5000).
#[must_use]
pub fn paper_sizes() -> Vec<usize> {
    vec![20, 100, 500, 1000, 2000, 3500, 5000]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_add_outgrows_mod() {
        let fig = run(&[50, 400]);
        let at = |label: &str, idx: usize| {
            fig.series
                .iter()
                .find(|s| s.label.contains(label))
                .unwrap()
                .points[idx]
                .1
        };
        // At 400 rules the random-priority adds are already well above
        // the mods… on hardware.
        let hw_add = at("add flow (HW", 1);
        let hw_mod = at("mod flow (HW", 1);
        // Superlinearity: add total grows faster than 8× between 50 → 400.
        let hw_add_small = at("add flow (HW", 0);
        assert!(
            hw_add / hw_add_small > 8.0,
            "superlinear adds: {hw_add_small} → {hw_add}"
        );
        assert!(hw_add > hw_mod, "add {hw_add} vs mod {hw_mod} at n=400");
        // OVS stays linear and cheap for both.
        let sw_add = at("add flow (OVS", 1);
        let sw_mod = at("mod flow (OVS", 1);
        assert!(sw_add < 0.1 && sw_mod < 0.1, "ovs {sw_add}/{sw_mod}");
    }

    #[test]
    fn crossover_at_scale() {
        // By ~2000 rules the hardware add curve exceeds the mod curve
        // (the Fig 3b gap).
        let fig = run(&[2000]);
        let hw_add = fig.series[0].points[0].1;
        let hw_mod = fig.series[1].points[0].1;
        assert!(
            hw_add > hw_mod,
            "adds ({hw_add}) should out-cost mods ({hw_mod}) at n=2000"
        );
    }
}
