//! The size-inference accuracy experiment — the paper's headline result:
//! "Tango can infer flow table sizes … within less than 5 % of actual
//! values, despite diverse switch caching algorithms."
//!
//! Algorithm 1 runs against a grid of switches: the three calibrated
//! vendor profiles and generic policy-cached switches across
//! FIFO/LRU/LFU/priority policies and several TCAM sizes.

use crate::par::par_map;
use crate::report::format_table;
use ofwire::types::Dpid;
use switchsim::cache::CachePolicy;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::infer_size::{probe_sizes, SizeProbeConfig};
use tango::pattern::RuleKind;
use tango::probe::ProbingEngine;
use tango::stats::relative_error;

/// One grid cell's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeAccuracyRow {
    /// Switch label.
    pub switch: String,
    /// Ground-truth fast-layer capacity.
    pub actual: usize,
    /// Algorithm 1's estimate.
    pub estimated: f64,
    /// Relative error.
    pub error: f64,
    /// Probe packets spent.
    pub packets: usize,
    /// Rules installed.
    pub rules: usize,
}

fn probe(profile: SwitchProfile, actual: usize, max_flows: usize, seed: u64) -> SizeAccuracyRow {
    let mut tb = Testbed::new(seed);
    let dpid = Dpid(1);
    let name = profile.name.clone();
    tb.attach_default(dpid, profile);
    let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
    let cfg = SizeProbeConfig {
        max_flows,
        seed,
        ..SizeProbeConfig::default()
    };
    let est = probe_sizes(&mut eng, &cfg).expect("size probe completes");
    let estimated = est.fast_layer_size().unwrap_or(0.0);
    SizeAccuracyRow {
        switch: name,
        actual,
        estimated,
        error: relative_error(estimated, actual as f64),
        packets: est.packets_sent,
        rules: est.m,
    }
}

/// Probes the three calibrated vendor profiles (full paper scale —
/// Switch #1 needs 8 192 rules installed, so this arm is release-bench
/// territory). Each probe owns its testbed and seed, so the three run
/// concurrently.
#[must_use]
pub fn run_vendors() -> Vec<SizeAccuracyRow> {
    par_map(
        vec![
            (SwitchProfile::vendor2(), 2560, 4096, 1),
            (SwitchProfile::vendor3(), 767, 2048, 2),
            (SwitchProfile::vendor1(), 4095, 8192, 5),
        ],
        |(profile, actual, max_flows, seed)| probe(profile, actual, max_flows, seed),
    )
}

/// Runs the generic policy-cached grid. `tcam_sizes` are the capacities
/// to sweep (paper-scale default: `[256, 512, 1024]`).
///
/// The grid (sizes × policies) materializes first, then every cell runs
/// on the [`par_map`] pool with its own testbed and cell-derived seed.
#[must_use]
pub fn run(tcam_sizes: &[u64]) -> Vec<SizeAccuracyRow> {
    // Generic policy-cached switches: the diverse-caching-algorithms
    // claim.
    let mut cells = Vec::new();
    for &size in tcam_sizes {
        for (tag, policy) in [
            ("fifo", CachePolicy::fifo()),
            ("lru", CachePolicy::lru()),
            ("lfu", CachePolicy::lfu()),
            ("priority", CachePolicy::priority()),
            ("priority+lru", CachePolicy::priority_then_lru()),
        ] {
            cells.push((size, tag, policy));
        }
    }
    par_map(cells, |(size, tag, policy)| {
        let profile = SwitchProfile::generic_cached(size, policy);
        let max_flows = (size as usize) * 2;
        probe(
            profile,
            size as usize,
            max_flows,
            (100 + size).wrapping_mul(43) ^ tag.len() as u64,
        )
    })
}

/// Renders rows plus the aggregate max error.
#[must_use]
pub fn render(rows: &[SizeAccuracyRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.switch.clone(),
                r.actual.to_string(),
                format!("{:.1}", r.estimated),
                format!("{:.2}%", r.error * 100.0),
                r.rules.to_string(),
                r.packets.to_string(),
            ]
        })
        .collect();
    let mut out = format_table(
        &["switch", "actual", "estimated", "error", "rules", "packets"],
        &body,
    );
    let max_err = rows.iter().map(|r| r.error).fold(0.0, f64::max);
    out.push_str(&format!(
        "\nmax relative error: {:.2}% (paper headline: < 5%)\n",
        max_err * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_accuracy_within_five_percent() {
        let mut rows = run(&[256]);
        // One (small) vendor profile in the unit test; the full vendor
        // arm runs in the experiments binary.
        rows.push(probe(SwitchProfile::vendor3(), 767, 2048, 2));
        for r in &rows {
            assert!(
                r.error < 0.05,
                "{}: estimated {:.1} vs actual {} (err {:.2}%)",
                r.switch,
                r.estimated,
                r.actual,
                r.error * 100.0
            );
        }
    }

    #[test]
    fn probing_overhead_is_linear() {
        let rows = run(&[200]);
        for r in &rows {
            assert!(
                r.packets < 12 * r.rules.max(600),
                "{}: {} packets for {} rules",
                r.switch,
                r.packets,
                r.rules
            );
        }
    }
}
