//! One module per paper artefact. See `DESIGN.md` §6 for the index and
//! `EXPERIMENTS.md` for paper-vs-measured numbers.

pub mod ablations;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig2;
pub mod fig3a;
pub mod fig3b;
pub mod fig3c;
pub mod fig5;
pub mod fig6;
pub mod fig89;
pub mod fleet;
pub mod infer_geometry;
pub mod infer_policy;
pub mod infer_size;
pub mod sched_sweep;
pub mod table1;
pub mod table2;
pub mod wire_bench;
