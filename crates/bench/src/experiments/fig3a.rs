//! Figure 3(a) — total flow-installation time for the six permutations
//! of 200 adds / 200 mods / 200 dels on Switch #1.
//!
//! Methodology per the paper: 1 000 rules are preinstalled (random
//! priorities, except that the mod/del targets carry a known priority so
//! strict operations can name them); each permutation is run on a fresh
//! switch; the experiment repeats `reps` times and reports the average.

use crate::par::par_map;
use ofwire::flow_mod::FlowMod;
use ofwire::types::Dpid;
use simnet::rng::DetRng;
use simnet::trace::Figure;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::pattern::{OpPhase, RuleKind, TangoPattern};
use tango::probe::ProbingEngine;

const BASE_PRIORITY: u16 = 500;

fn fresh_switch(preinstalled: usize, per_phase: usize, seed: u64) -> (Testbed, Dpid) {
    let mut tb = Testbed::new(seed);
    let dpid = Dpid(1);
    tb.attach_default(dpid, SwitchProfile::vendor1());
    let mut rng = DetRng::new(seed ^ 0xabc);
    let fms: Vec<FlowMod> = (0..preinstalled)
        .map(|i| {
            // Targets of the mod phase (ids 0..per_phase) sit at
            // BASE_PRIORITY and del-phase targets (per_phase..2·per_phase)
            // at BASE + 2·per_phase, matching the pattern's strict ops;
            // the rest are random as in the paper.
            let prio = if i < per_phase {
                BASE_PRIORITY
            } else if i < 2 * per_phase {
                BASE_PRIORITY + 2 * per_phase as u16
            } else {
                1000 + rng.index(2000) as u16
            };
            FlowMod::add(RuleKind::L3.flow_match(i as u32), prio)
        })
        .collect();
    let (_ok, failed, _) = tb.batch(dpid, fms);
    assert_eq!(failed, 0);
    (tb, dpid)
}

/// Runs the experiment: `per_phase` ops per phase, `preinstalled` rules,
/// `reps` repetitions. Returns a bar figure: x = permutation index,
/// y = average installation time (s), labelled like the paper's x-axis.
#[must_use]
pub fn run(preinstalled: usize, per_phase: usize, reps: usize) -> Figure {
    let mut fig = Figure::new(
        "fig3a: HW Switch #1 Rule Installation Sequences",
        "scenario",
        "installation time (s)",
    );
    // Grid: 6 permutations × reps, every rep on a fresh seeded switch —
    // fan the whole grid out and average per permutation afterwards.
    let perms = OpPhase::permutations();
    let cells: Vec<(usize, usize)> = (0..perms.len())
        .flat_map(|x| (0..reps).map(move |rep| (x, rep)))
        .collect();
    let times = par_map(cells, |(x, rep)| {
        let pattern = TangoPattern::op_permutation(
            perms[x],
            per_phase,
            preinstalled as u32,
            BASE_PRIORITY,
            RuleKind::L3,
        );
        let (mut tb, dpid) = fresh_switch(preinstalled, per_phase, rep as u64);
        let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
        let res = eng.run(&pattern).expect("pattern runs");
        assert_eq!(res.rejected(), 0, "{}", pattern.name);
        res.install_time().as_secs_f64()
    });
    for (x, perm) in perms.into_iter().enumerate() {
        let pattern = TangoPattern::op_permutation(
            perm,
            per_phase,
            preinstalled as u32,
            BASE_PRIORITY,
            RuleKind::L3,
        );
        let total: f64 = times[x * reps..(x + 1) * reps].iter().sum();
        let series = fig.series_mut(pattern.name.clone());
        series.push(x as f64, total / reps as f64);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_permutations_measured() {
        let fig = run(100, 20, 2);
        assert_eq!(fig.series.len(), 6);
        for s in &fig.series {
            assert_eq!(s.len(), 1);
            assert!(s.points[0].1 > 0.0, "{}", s.label);
        }
        // Deleting before adding is cheaper than adding before deleting
        // (fewer resident entries to shift against).
        let time_of = |name: &str| fig.series.iter().find(|s| s.label == name).unwrap().points[0].1;
        assert!(
            time_of("del_add_mod") < time_of("add_del_mod"),
            "del-first {} vs add-first {}",
            time_of("del_add_mod"),
            time_of("add_del_mod")
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(60, 10, 1);
        let b = run(60, 10, 1);
        assert_eq!(a, b);
    }
}
