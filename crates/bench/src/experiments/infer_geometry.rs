//! TCAM geometry (width-mode) inference — the paper's §9 future-work
//! pattern, exercised across all four switch profiles.

use crate::par::par_map;
use crate::report::format_table;
use ofwire::types::Dpid;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::infer_geometry::{probe_geometry, GeometryClass, GeometryEstimate};

/// One row: profile name, probe result.
#[derive(Debug, Clone, PartialEq)]
pub struct GeometryRow {
    /// Switch label.
    pub switch: String,
    /// The probe result.
    pub estimate: GeometryEstimate,
}

/// Probes every profile. `cap` bounds each sub-probe.
///
/// Each profile probes an independent testbed (fixed per-cell seed), so
/// the four probes fan out across cores via [`par_map`].
#[must_use]
pub fn run(cap: usize) -> Vec<GeometryRow> {
    par_map(
        vec![
            SwitchProfile::ovs(),
            SwitchProfile::vendor1(),
            SwitchProfile::vendor2(),
            SwitchProfile::vendor3(),
        ],
        |profile| {
            let mut tb = Testbed::new(0x9e02);
            let dpid = Dpid(1);
            let name = profile.name.clone();
            tb.attach_default(dpid, profile);
            let estimate =
                probe_geometry(&mut tb, dpid, cap, 400).expect("geometry probe completes");
            GeometryRow {
                switch: name,
                estimate,
            }
        },
    )
}

/// Renders the classification table.
#[must_use]
pub fn render(rows: &[GeometryRow]) -> String {
    let fmt = |v: Option<f64>| v.map_or("-".into(), |x| format!("{x:.0}"));
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let class = match r.estimate.class {
                GeometryClass::Unbounded => "software (unbounded)".to_string(),
                GeometryClass::FixedWidth { entries } => {
                    format!("fixed width ({entries:.0})")
                }
                GeometryClass::WidthSensitive { narrow, wide } => {
                    format!("width-sensitive ({narrow:.0}/{wide:.0})")
                }
            };
            vec![
                r.switch.clone(),
                fmt(r.estimate.l2_only),
                fmt(r.estimate.l3_only),
                fmt(r.estimate.l2l3),
                class,
            ]
        })
        .collect();
    format_table(&["switch", "L2-only", "L3-only", "L2+L3", "class"], &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_mentions_every_profile() {
        // Small cap keeps the test quick; classifications at this cap
        // are exercised more thoroughly in `tango::infer_geometry`.
        let rows = run(1024);
        let text = render(&rows);
        for name in ["OVS", "Switch #1", "Switch #2", "Switch #3"] {
            assert!(text.contains(name), "{text}");
        }
        // Switch #3 is fully classified even at this cap.
        let s3 = rows.iter().find(|r| r.switch == "Switch #3").unwrap();
        assert!(matches!(
            s3.estimate.class,
            GeometryClass::WidthSensitive { .. }
        ));
    }
}
