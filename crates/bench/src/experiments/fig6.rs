//! Figure 6 — visualization of the cache-policy probe's attribute
//! initialization for cache size 100 (200 flows).
//!
//! Reproduces the paper's plot: per flow id, the initialized insertion
//! rank, use rank, priority, and traffic count. Each attribute splits
//! the flows into balanced halves, no two attributes agreeing on the
//! split.

use simnet::trace::Figure;
use tango::infer_policy::{initialization_plan, PolicyProbeConfig};

/// Builds the figure for the given cache size.
#[must_use]
pub fn run(cache_size: usize) -> Figure {
    let cfg = PolicyProbeConfig::default();
    let plan = initialization_plan(2 * cache_size, false, false, &cfg);
    let mut fig = Figure::new(
        format!("fig6: Cache Algorithm Pattern for Cache Size = {cache_size}"),
        "flow id",
        "attribute value",
    );
    fig.series_mut("insertion time");
    fig.series_mut("use time");
    fig.series_mut("priority");
    fig.series_mut("traffic count");
    for f in &plan {
        let x = f64::from(f.id);
        fig.series[0].push(x, f64::from(f.id));
        fig.series[1].push(x, f64::from(f.use_rank));
        fig.series[2].push(x, f64::from(f.priority));
        fig.series[3].push(x, f64::from(f.traffic));
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_matches_plan_shape() {
        let fig = run(100);
        assert_eq!(fig.series.len(), 4);
        for s in &fig.series {
            assert_eq!(s.len(), 200, "{}", s.label);
        }
        // Insertion time is the identity ramp 0..200 (as in the paper).
        assert_eq!(fig.series[0].points[0], (0.0, 0.0));
        assert_eq!(fig.series[0].points[199], (199.0, 199.0));
        // Priority and traffic take exactly two values each.
        for idx in [2usize, 3] {
            let mut vals: Vec<f64> = fig.series[idx].points.iter().map(|p| p.1).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
            vals.dedup();
            assert_eq!(vals.len(), 2, "{}", fig.series[idx].label);
        }
    }
}
