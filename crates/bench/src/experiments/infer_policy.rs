//! The cache-policy identification experiment (§5.3): Algorithm 2 runs
//! against switches with known policies and the report is compared
//! against ground truth (up to black-box behavioural equivalence).

use crate::par::par_map;
use crate::report::format_table;
use ofwire::types::Dpid;
use switchsim::cache::{Attribute, CachePolicy, Direction, SortKey};
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::infer_policy::{probe_policy, PolicyProbeConfig};
use tango::pattern::RuleKind;
use tango::probe::ProbingEngine;

/// One grid cell: ground truth vs inferred.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRow {
    /// Ground-truth policy description.
    pub actual: String,
    /// Inferred policy description.
    pub inferred: String,
    /// Whether the inferred report matches the expected one.
    pub correct: bool,
}

/// The expected report for each ground-truth policy, accounting for the
/// two documented equivalences: id tie-breaks read as FIFO, and
/// traffic-count tie-breaks are unobservable.
fn expected_report(policy: &CachePolicy) -> Vec<SortKey> {
    let mut out = Vec::new();
    for k in &policy.keys {
        out.push(*k);
        if k.attribute.is_serial() || k.attribute == Attribute::TrafficCount {
            return out;
        }
    }
    // Policy ends on a non-serial key (or is priority-only): the switch's
    // id tie-break surfaces as FIFO.
    if out
        .last()
        .is_none_or(|k| k.attribute == Attribute::Priority)
    {
        out.push(SortKey {
            attribute: Attribute::InsertionTime,
            direction: Direction::KeepLow,
        });
    }
    out
}

/// Runs Algorithm 2 across the policy family at the given cache size.
#[must_use]
pub fn run(cache_size: u64) -> Vec<PolicyRow> {
    let policies = [
        CachePolicy::fifo(),
        CachePolicy::lru(),
        CachePolicy::lfu(),
        CachePolicy::priority(),
        CachePolicy::priority_then_lru(),
        CachePolicy::lfu_then_fifo(),
    ];
    // Six independent fixed-seed testbeds — one per policy — fan out.
    par_map(policies.to_vec(), |policy| {
        let mut tb = Testbed::new(0xb0);
        let dpid = Dpid(1);
        tb.attach_default(
            dpid,
            SwitchProfile::generic_cached(cache_size, policy.clone()),
        );
        let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
        let inferred = probe_policy(&mut eng, cache_size as usize, &PolicyProbeConfig::default())
            .expect("policy probe completes");
        let expected = expected_report(&policy);
        PolicyRow {
            actual: policy.describe(),
            inferred: inferred.as_policy().describe(),
            correct: inferred.keys == expected,
        }
    })
}

/// Renders the comparison table.
#[must_use]
pub fn render(rows: &[PolicyRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.actual.clone(),
                r.inferred.clone(),
                if r.correct { "yes" } else { "NO" }.into(),
            ]
        })
        .collect();
    format_table(&["actual policy", "inferred", "correct"], &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_policy_identified() {
        let rows = run(100);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.correct, "{} inferred as {}", r.actual, r.inferred);
        }
    }

    #[test]
    fn expected_reports_follow_equivalences() {
        // LFU: traffic tie-breaks are unobservable → single key.
        assert_eq!(expected_report(&CachePolicy::lfu()).len(), 1);
        // Priority-only: the id tie-break reads as FIFO.
        let p = expected_report(&CachePolicy::priority());
        assert_eq!(p.len(), 2);
        assert_eq!(p[1].attribute, Attribute::InsertionTime);
        // LRU is serial: one key, done.
        assert_eq!(expected_report(&CachePolicy::lru()).len(), 1);
    }
}
