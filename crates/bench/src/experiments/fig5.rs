//! Figure 5 — per-flow RTTs on a switch with multiple cache layers,
//! showing the clusters Algorithm 1's stage 2 detects.
//!
//! The paper plots ~2 500 flows on "HW Switch #2" falling into three RTT
//! bands (fast path 1 ≈ 0.20 ms, fast path 2 ≈ 0.50 ms, slow path
//! ≈ 1.40 ms, in its 10⁻² ms axis units). We reproduce it on the
//! three-level `multilayer` profile.

use ofwire::flow_mod::FlowMod;
use ofwire::types::Dpid;
use simnet::trace::Figure;
use switchsim::cache::CachePolicy;
use switchsim::harness::Testbed;
use switchsim::pipeline::Hit;
use switchsim::profiles::SwitchProfile;
use tango::pattern::RuleKind;

/// Installs `flows` rules on a `l0`/`l1`-sized three-level switch and
/// probes each once, recording RTT by flow id with one series per layer.
#[must_use]
pub fn run(l0: u64, l1: u64, flows: usize) -> Figure {
    let mut tb = Testbed::new(5);
    let dpid = Dpid(1);
    tb.attach_default(dpid, SwitchProfile::multilayer(l0, l1, CachePolicy::fifo()));
    let fms: Vec<FlowMod> = (0..flows)
        .map(|i| FlowMod::add(RuleKind::L3.flow_match(i as u32), 100))
        .collect();
    let (ok, failed, _) = tb.batch(dpid, fms);
    assert_eq!(ok, flows);
    assert_eq!(failed, 0);

    let mut fig = Figure::new(
        "fig5: Round trip times for flows installed in a 3-layer switch",
        "flow id",
        "RTT (ms)",
    );
    fig.series_mut("fast path 1");
    fig.series_mut("fast path 2");
    fig.series_mut("slow path");
    for f in 0..flows {
        let key = ofwire::flow_match::FlowMatch::key_for_id(f as u32);
        let (hit, rtt) = tb.probe(dpid, &key);
        let level = match hit {
            Hit::Table { level, .. } => level.min(2),
            Hit::Miss => unreachable!("every probed flow has a rule"),
        };
        fig.series[level].push(f as f64, rtt.as_millis_f64());
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::trace::Summary;
    use tango::cluster::cluster_rtts;

    #[test]
    fn three_bands_with_expected_sizes() {
        let fig = run(100, 400, 1200);
        assert_eq!(fig.series[0].len(), 100);
        assert_eq!(fig.series[1].len(), 400);
        assert_eq!(fig.series[2].len(), 700);
        let c0 = Summary::of(fig.series[0].points.iter().map(|p| p.1));
        let c1 = Summary::of(fig.series[1].points.iter().map(|p| p.1));
        let c2 = Summary::of(fig.series[2].points.iter().map(|p| p.1));
        assert!(c0.mean < c1.mean && c1.mean < c2.mean);
    }

    #[test]
    fn tango_clustering_recovers_three_layers() {
        let fig = run(80, 250, 800);
        let all: Vec<f64> = fig
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.1))
            .collect();
        let c = cluster_rtts(&all);
        assert_eq!(c.k(), 3, "centers {:?}", c.centers);
        assert_eq!(c.sizes, vec![80, 250, 470]);
    }
}
