//! Table 1 — diversity of tables and table sizes.
//!
//! Black-box reproduction: install L2-only, L3-only, and combined rules
//! until the switch rejects (or a cap, for unbounded software tables),
//! reporting the observed capacity per switch × entry kind. Expected
//! row values: OVS `<∞` everywhere; Switch #1 TCAM 4K/2K (plus unbounded
//! user space); Switch #2 2560/2560; Switch #3 767/369.

use crate::par::par_map;
use crate::report::format_table;
use ofwire::flow_mod::FlowMod;
use ofwire::types::Dpid;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::pattern::RuleKind;

/// Observed capacities for one switch.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Switch label.
    pub switch: String,
    /// Hardware capacity per kind (L2-only, L3-only, L2+L3); `None`
    /// means the cap was reached without rejection (unbounded).
    pub capacity: [Option<usize>; 3],
}

fn installed_until_rejection(profile: &SwitchProfile, kind: RuleKind, cap: usize) -> Option<usize> {
    let mut tb = Testbed::new(1);
    let dpid = Dpid(1);
    tb.attach_default(dpid, profile.clone());
    // Batches keep virtual-time accounting cheap.
    let mut installed = 0usize;
    while installed < cap {
        let n = 512.min(cap - installed);
        let fms: Vec<FlowMod> = (installed..installed + n)
            .map(|i| FlowMod::add(kind.flow_match(i as u32), 100))
            .collect();
        let (ok, failed, _) = tb.batch(dpid, fms);
        installed += ok;
        if failed > 0 {
            return Some(tb.switch(dpid).level_occupancy(0));
        }
    }
    None
}

/// For switches with software tables, the hardware (level-0) occupancy
/// observed after exceeding it.
fn hardware_occupancy(profile: &SwitchProfile, kind: RuleKind, overfill: usize) -> usize {
    let mut tb = Testbed::new(1);
    let dpid = Dpid(1);
    tb.attach_default(dpid, profile.clone());
    let fms: Vec<FlowMod> = (0..overfill)
        .map(|i| FlowMod::add(kind.flow_match(i as u32), 100))
        .collect();
    tb.batch(dpid, fms);
    tb.switch(dpid).level_occupancy(0)
}

/// Runs the Table 1 experiment. `cap` bounds the probe for unbounded
/// tables (paper-scale: 8192).
///
/// All 12 cells (4 profiles × 3 kinds) probe independent testbeds, so
/// they fan out on the [`par_map`] pool; rows reassemble from the
/// index-ordered results.
#[must_use]
pub fn run(cap: usize) -> Vec<Table1Row> {
    let kinds = [RuleKind::L2, RuleKind::L3, RuleKind::L2L3];
    let profiles = [
        SwitchProfile::ovs(),
        SwitchProfile::vendor1(),
        SwitchProfile::vendor2(),
        SwitchProfile::vendor3(),
    ];
    let cells: Vec<(SwitchProfile, RuleKind)> = profiles
        .iter()
        .flat_map(|p| kinds.into_iter().map(move |k| (p.clone(), k)))
        .collect();
    let observed = par_map(cells, |(profile, kind)| {
        match installed_until_rejection(&profile, kind, cap) {
            Some(n) => Some(n),
            None => {
                // No rejection: if there is a bounded hardware level
                // underneath (Switch #1), report its occupancy;
                // OVS-style switches stay unbounded.
                let hw = hardware_occupancy(&profile, kind, cap.min(6000));
                if hw > 0 && hw < cap.min(6000) {
                    Some(hw)
                } else {
                    None
                }
            }
        }
    });
    profiles
        .iter()
        .enumerate()
        .map(|(p, profile)| Table1Row {
            switch: profile.name.clone(),
            capacity: [observed[p * 3], observed[p * 3 + 1], observed[p * 3 + 2]],
        })
        .collect()
}

/// Formats rows like the paper's Table 1.
#[must_use]
pub fn render(rows: &[Table1Row]) -> String {
    let fmt = |c: Option<usize>| c.map_or("<inf".to_string(), |n| n.to_string());
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.switch.clone(),
                fmt(r.capacity[0]),
                fmt(r.capacity[1]),
                fmt(r.capacity[2]),
            ]
        })
        .collect();
    format_table(
        &["switch", "L2-only (hw)", "L3-only (hw)", "L2+L3 (hw)"],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let rows = run(8192);
        let by_name = |n: &str| rows.iter().find(|r| r.switch == n).unwrap();
        // OVS: unbounded everywhere.
        assert_eq!(by_name("OVS").capacity, [None, None, None]);
        // Switch #1: TCAM 4095/4095/2047 observed (one unit reserved for
        // the default route), software unbounded so no rejection.
        assert_eq!(
            by_name("Switch #1").capacity,
            [Some(4095), Some(4095), Some(2047)]
        );
        // Switch #2: 2560 regardless of kind.
        assert_eq!(
            by_name("Switch #2").capacity,
            [Some(2560), Some(2560), Some(2560)]
        );
        // Switch #3: 767 single-layer, 369 combined.
        assert_eq!(
            by_name("Switch #3").capacity,
            [Some(767), Some(767), Some(369)]
        );
    }

    #[test]
    fn render_contains_all_switches() {
        let rows = run(1024);
        let text = render(&rows);
        for name in ["OVS", "Switch #1", "Switch #2", "Switch #3"] {
            assert!(text.contains(name), "{text}");
        }
    }
}
