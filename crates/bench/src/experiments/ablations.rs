//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. clustering method (gap-based vs k-means) in Algorithm 1;
//! 2. trials-per-level `k` sweep — accuracy vs probe overhead (the
//!    asymptotic-optimality trade-off);
//! 3. greedy vs non-greedy (prefix-lookahead) scheduler batching;
//! 4. guard-time concurrent dispatch on/off for dependent requests.

use crate::lower::{lower_scenario, triangle_testbed};
use crate::par::par_map;
use crate::report::format_table;
use ofwire::types::Dpid;
use simnet::time::SimDuration;
use switchsim::cache::CachePolicy;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::db::TangoDb;
use tango::infer_size::{probe_sizes, ClusterMethod, SizeProbeConfig};
use tango::pattern::RuleKind;
use tango::probe::ProbingEngine;
use tango::stats::relative_error;
use tango_sched::basic::run_tango_guarded;
use tango_sched::executor::{execute_online, Discipline, Release};
use tango_sched::extensions::{execute_batched_greedy, execute_batched_lookahead};
use workloads::scenarios::link_failure;
use workloads::topology::Topology;

fn size_probe_error(tcam: u64, method: ClusterMethod, trials: usize, seed: u64) -> (f64, usize) {
    let mut tb = Testbed::new(seed);
    let dpid = Dpid(1);
    tb.attach_default(
        dpid,
        SwitchProfile::generic_cached(tcam, CachePolicy::fifo()),
    );
    let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
    let cfg = SizeProbeConfig {
        max_flows: (tcam * 2) as usize,
        trials_per_level: trials,
        cluster_method: method,
        seed,
        ..SizeProbeConfig::default()
    };
    let est = probe_sizes(&mut eng, &cfg).expect("size probe completes");
    (
        relative_error(est.fast_layer_size().unwrap_or(0.0), tcam as f64),
        est.packets_sent,
    )
}

/// Ablation 1: gap-based vs k-means clustering at fixed trials.
#[must_use]
pub fn clustering_ablation(tcam: u64) -> String {
    let rows = par_map(
        vec![
            ("gaps", ClusterMethod::Gaps),
            ("kmeans", ClusterMethod::KMeans),
        ],
        |(name, method)| {
            let (err, packets) = size_probe_error(tcam, method, 600, 0xab1);
            vec![
                name.to_string(),
                format!("{:.2}%", err * 100.0),
                packets.to_string(),
            ]
        },
    );
    format_table(&["clustering", "error", "packets"], &rows)
}

/// Ablation 2: trials-per-level sweep (accuracy vs probe overhead).
///
/// The trials × seeds grid fans out cell-by-cell; per-trial averages
/// reassemble from the index-ordered results.
#[must_use]
pub fn trials_sweep(tcam: u64, trials: &[usize]) -> String {
    // Average over a few seeds so the trend is visible.
    let seeds = [1u64, 2, 3, 4, 5];
    let cells: Vec<(usize, u64)> = trials
        .iter()
        .flat_map(|&k| seeds.iter().map(move |&s| (k, s)))
        .collect();
    let probed = par_map(cells, |(k, s)| {
        size_probe_error(tcam, ClusterMethod::Gaps, k, s)
    });
    let rows: Vec<Vec<String>> = trials
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            let chunk = &probed[i * seeds.len()..(i + 1) * seeds.len()];
            let errs: f64 = chunk.iter().map(|&(e, _)| e).sum();
            let packets: usize = chunk.iter().map(|&(_, p)| p).sum();
            vec![
                k.to_string(),
                format!("{:.2}%", errs / seeds.len() as f64 * 100.0),
                (packets / seeds.len()).to_string(),
            ]
        })
        .collect();
    format_table(&["trials/level", "mean error", "mean packets"], &rows)
}

/// Ablation 3: greedy vs lookahead batching on an LF-style DAG.
/// Returns `(greedy_s, lookahead_s)`.
#[must_use]
pub fn batching_ablation(lf_flows: usize) -> (f64, f64) {
    let scen = link_failure(&Topology::triangle(), (0, 1), lf_flows, 0xab3);
    let arms = par_map(vec![true, false], |greedy| {
        let (mut tb, dpids) = triangle_testbed(1);
        let mut dag = lower_scenario(&mut tb, &dpids, &scen);
        let db = TangoDb::new();
        let report = if greedy {
            execute_batched_greedy(&mut tb, &mut dag, &db)
        } else {
            execute_batched_lookahead(&mut tb, &mut dag, &db)
        };
        report
            .expect("generated scenarios are acyclic")
            .makespan
            .as_secs_f64()
    });
    (arms[0], arms[1])
}

/// Ablation 4: ack-waiting vs guard-time dispatch on the same DAG.
/// Returns `(ack_s, guard_s)`.
#[must_use]
pub fn guard_ablation(lf_flows: usize, guard_us: u64) -> (f64, f64) {
    let scen = link_failure(&Topology::triangle(), (0, 1), lf_flows, 0xab4);
    let arms = par_map(vec![true, false], |ack| {
        let (mut tb, dpids) = triangle_testbed(2);
        let mut dag = lower_scenario(&mut tb, &dpids, &scen);
        if ack {
            execute_online(
                &mut tb,
                &mut dag,
                Discipline::TangoTypePriority,
                Release::Ack,
            )
            .expect("generated scenarios are acyclic")
            .makespan
            .as_secs_f64()
        } else {
            run_tango_guarded(&mut tb, &mut dag, SimDuration::from_micros(guard_us))
                .makespan
                .as_secs_f64()
        }
    });
    (arms[0], arms[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustering_methods_both_accurate() {
        for method in [ClusterMethod::Gaps, ClusterMethod::KMeans] {
            let (err, _) = size_probe_error(256, method, 600, 11);
            assert!(err < 0.06, "{method:?}: {err}");
        }
    }

    #[test]
    fn more_trials_cost_more_packets() {
        let (_, p_small) = size_probe_error(200, ClusterMethod::Gaps, 50, 1);
        let (_, p_large) = size_probe_error(200, ClusterMethod::Gaps, 800, 1);
        assert!(p_large > p_small);
    }

    #[test]
    fn guard_dispatch_wins() {
        let (ack, guard) = guard_ablation(40, 50);
        assert!(guard < ack, "guard {guard} vs ack {ack}");
    }

    #[test]
    fn lookahead_is_competitive() {
        let (greedy, lookahead) = batching_ablation(30);
        assert!(
            lookahead <= greedy * 1.25,
            "lookahead {lookahead} vs greedy {greedy}"
        );
    }
}
