//! Table 2 — ClassBench rule sets and their priority assignments:
//! number of rules per file, topological priority count, R priority
//! count, and flows actually installed.

use crate::report::format_table;
use ofwire::flow_mod::FlowMod;
use ofwire::types::Dpid;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango_sched::priority::{r_priorities, satisfies, topological_priorities};
use workloads::classbench::{generate, ClassBenchConfig};
use workloads::dependency::rule_dependencies;

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// File label.
    pub file: String,
    /// Rules in the file.
    pub flow_count: usize,
    /// Distinct topological priorities.
    pub topo_priorities: usize,
    /// Distinct R priorities (1-to-1).
    pub r_priorities: usize,
    /// Rules successfully installed on the reference switch.
    pub flows_installed: usize,
}

/// Runs the experiment for all three presets.
#[must_use]
pub fn run() -> Vec<Table2Row> {
    ClassBenchConfig::presets()
        .into_iter()
        .map(|(name, cfg)| {
            let rules = generate(&cfg);
            let matches: Vec<_> = rules.iter().map(|r| r.flow_match).collect();
            let deps = rule_dependencies(&matches);
            let topo =
                topological_priorities(matches.len(), &deps).expect("ClassBench ACLs are acyclic");
            let r = r_priorities(matches.len(), &deps).expect("ClassBench ACLs are acyclic");
            assert!(satisfies(&topo.priorities, &deps));
            assert!(satisfies(&r.priorities, &deps));

            // Install on an OVS switch (unbounded tables — installation
            // count equals the file size, as in the paper).
            let mut tb = Testbed::new(2);
            let dpid = Dpid(1);
            tb.attach_default(dpid, SwitchProfile::ovs());
            let fms: Vec<FlowMod> = matches
                .iter()
                .zip(&r.priorities)
                .map(|(m, &p)| FlowMod::add(*m, p))
                .collect();
            let (ok, _, _) = tb.batch(dpid, fms);

            Table2Row {
                file: name.to_string(),
                flow_count: rules.len(),
                topo_priorities: topo.distinct,
                r_priorities: r.distinct,
                flows_installed: ok,
            }
        })
        .collect()
}

/// Formats the rows like the paper's Table 2.
#[must_use]
pub fn render(rows: &[Table2Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.file.clone(),
                r.topo_priorities.to_string(),
                r.r_priorities.to_string(),
                r.flows_installed.to_string(),
            ]
        })
        .collect();
    format_table(
        &[
            "Flow Files",
            "Topological Priorities",
            "R Priorities",
            "Flows Installed",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let rows = run();
        let expect = [
            ("Classbench1", 829, 64),
            ("Classbench2", 989, 38),
            ("Classbench3", 972, 33),
        ];
        for ((file, flows, topo), row) in expect.iter().zip(&rows) {
            assert_eq!(&row.file, file);
            assert_eq!(row.flow_count, *flows, "{file}");
            assert_eq!(row.topo_priorities, *topo, "{file}");
            assert_eq!(row.r_priorities, *flows, "{file}");
            assert_eq!(row.flows_installed, *flows, "{file}");
        }
    }
}
