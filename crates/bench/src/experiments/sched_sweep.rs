//! Scheduler-portfolio sweep (fig11-style) over scaled update DAGs.
//!
//! One run executes the *same* ClassBench-style 100k-op update DAG
//! under every scheduler in `tango_sched::schedulers::registry()` —
//! each cell on its own seeded testbed of OVS switches — and reports
//! per-scheduler makespan (the ordering-quality measure: same work,
//! same switches, only the dispatch order differs) plus completion
//! counts. Wall-clock per scheduler is measured too, but returned
//! separately: it goes into `BENCH_experiments.json`, never into the
//! determinism-diffed `results/` artifact.

use crate::lower::lower_scenario;
use crate::par::par_map;
use crate::report::format_table;
use ofwire::types::Dpid;
use simnet::telemetry::{ChromeTrace, MetricsSnapshot, Recorder};
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::db::TangoDb;
use tango_sched::executor::execute_with;
use tango_sched::schedulers::registry;
use workloads::update_dag::{scaled_update_dag, UpdateDagConfig};

/// One scheduler's result over the sweep workload.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Registry name.
    pub scheduler: &'static str,
    /// Operation count of the DAG.
    pub ops: usize,
    /// Simulated makespan (s).
    pub makespan_s: f64,
    /// Mean per-request completion latency (s) — the ordering-quality
    /// measure that still discriminates when the switches saturate and
    /// every order reaches the same makespan.
    pub mean_completion_s: f64,
    /// Requests completed.
    pub completed: usize,
    /// Requests failed.
    pub failed: usize,
    /// Host wall-clock (s) spent dispatching — reported to
    /// `BENCH_experiments.json` only (nondeterministic).
    pub wall_secs: f64,
}

fn sweep_testbed(switches: usize, seed: u64) -> (Testbed, Vec<Dpid>) {
    let mut tb = Testbed::new(seed);
    let dpids: Vec<Dpid> = (0..switches)
        .map(|i| {
            let dpid = Dpid(i as u64 + 1);
            tb.attach_default(dpid, SwitchProfile::ovs());
            dpid
        })
        .collect();
    (tb, dpids)
}

/// Sweeps every registered scheduler over one `ops`-operation DAG.
#[must_use]
pub fn run(ops: usize) -> Vec<SweepRow> {
    run_cells(ops, false).into_iter().map(|(r, _)| r).collect()
}

/// Runs the sweep with telemetry enabled on every cell: returns the
/// rows (identical to [`run`]'s — recording never perturbs timing)
/// plus the merged Chrome trace JSON and metrics snapshot.
#[must_use]
pub fn run_traced(ops: usize) -> (Vec<SweepRow>, String, MetricsSnapshot) {
    let cells = run_cells(ops, true);
    let mut ct = ChromeTrace::new();
    for (row, rec) in &cells {
        if let Some(rec) = rec {
            ct.add_cell(&format!("sched_sweep {}", row.scheduler), rec);
        }
    }
    let metrics = Recorder::merge_metrics(cells.iter().filter_map(|(_, r)| r.as_deref()));
    let rows = cells.into_iter().map(|(r, _)| r).collect();
    (rows, ct.render(), metrics)
}

fn run_cells(ops: usize, traced: bool) -> Vec<(SweepRow, Option<Box<Recorder>>)> {
    let cfg = UpdateDagConfig::sweep(ops);
    let scen = scaled_update_dag(&cfg);
    // Build the testbed and lower the 100k-op scenario exactly once;
    // every cell clones the lowered world. A `Testbed` clone replays
    // byte-identically to a freshly built twin (RNG streams and event
    // arena are part of the state), so per-cell results are unchanged —
    // but the dominant generate-and-preinstall cost is paid once
    // instead of once per registered scheduler. Telemetry is enabled on
    // the clone, after lowering, so a traced cell records dispatch only.
    let (template_tb, dpids) = sweep_testbed(cfg.switches, 0x5EED);
    let mut template_tb = template_tb;
    let template_dag = lower_scenario(&mut template_tb, &dpids, &scen);
    par_map(registry(), move |entry| {
        let mut tb = template_tb.clone();
        if traced {
            tb.enable_telemetry();
        }
        let mut dag = template_dag.clone();
        let mut sched = entry.build();
        let t0 = std::time::Instant::now();
        let report = execute_with(
            &mut tb,
            &mut dag,
            &TangoDb::new(),
            sched.as_mut(),
            entry.release,
        )
        .expect("sweep DAGs are acyclic");
        let wall_secs = t0.elapsed().as_secs_f64();
        assert_eq!(report.failed, 0, "{}", entry.name);
        let row = SweepRow {
            scheduler: entry.name,
            ops,
            makespan_s: report.makespan.as_secs_f64(),
            mean_completion_s: report.mean_completion_s(),
            completed: report.completed,
            failed: report.failed,
            wall_secs,
        };
        (row, tb.finish_recorder())
    })
}

/// Renders the deterministic part of the sweep (everything but
/// wall-clock) as the `results/` artifact, with each scheduler's
/// makespan ratio against the Dionysus baseline.
#[must_use]
pub fn render(rows: &[SweepRow]) -> String {
    let baseline = rows
        .iter()
        .find(|r| r.scheduler == "dionysus")
        .map_or(f64::NAN, |r| r.mean_completion_s);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheduler.to_string(),
                r.ops.to_string(),
                format!("{:.4}", r.makespan_s),
                format!("{:.6}", r.mean_completion_s),
                format!("{:.3}", r.mean_completion_s / baseline),
                r.completed.to_string(),
                r.failed.to_string(),
            ]
        })
        .collect();
    format_table(
        &[
            "scheduler",
            "ops",
            "makespan (s)",
            "mean compl (s)",
            "vs dionysus",
            "completed",
            "failed",
        ],
        &table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_registry_and_tango_beats_dionysus() {
        // Below ~1k ops the tango-vs-dionysus gap is inside release-rule
        // jitter; from 1.5k up the ordering win is stable.
        let rows = run(1_500);
        assert_eq!(rows.len(), registry().len());
        assert!(rows.len() >= 4, "sweep needs at least four schedulers");
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.scheduler == name)
                .unwrap_or_else(|| panic!("row for {name}"))
        };
        for r in &rows {
            assert_eq!(r.completed, 1_500, "{}", r.scheduler);
            assert_eq!(r.failed, 0, "{}", r.scheduler);
            assert!(r.makespan_s > 0.0, "{}", r.scheduler);
            assert!(r.mean_completion_s > 0.0, "{}", r.scheduler);
        }
        // The headline ordering result must hold on the sweep workload:
        // Tango's ordering is no worse than Dionysus on the quality
        // metric (and within noise on saturated-makespan).
        assert!(
            get("tango").mean_completion_s <= get("dionysus").mean_completion_s,
            "tango {} vs dionysus {}",
            get("tango").mean_completion_s,
            get("dionysus").mean_completion_s
        );
        assert!(
            get("tango").makespan_s <= get("dionysus").makespan_s * 1.001,
            "tango {} vs dionysus {}",
            get("tango").makespan_s,
            get("dionysus").makespan_s
        );
    }

    #[test]
    fn render_excludes_wall_clock() {
        let rows = run(200);
        let text = render(&rows);
        assert!(text.contains("scheduler"));
        assert!(text.contains("dionysus"));
        assert!(!text.contains("wall"), "wall-clock must stay out:\n{text}");
        // Deterministic across repeated runs (the artifact is diffed).
        let again = render(&run(200));
        assert_eq!(text, again);
    }
}
