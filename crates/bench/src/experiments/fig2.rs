//! Figure 2 — tiered forwarding delays.
//!
//! * (a) OVS: 80 preinstalled rules, 160 flows × 2 packets. First
//!   packets of known flows take the slow path (userspace + microflow
//!   clone), second packets the fast path; unknown flows hit the
//!   controller. Three delay tiers around 3.0 / 4.5 / 4.65 ms.
//! * (b) Switch #1: 3 500 preinstalled rules, >5 000 flows. The first
//!   2 047 rules sit in TCAM (fast, 0.665 ms), the rest in the software
//!   table (slow, 3.7 ms), unknown flows at the controller (7.5 ms) —
//!   and both packets of a flow land in the same tier (FIFO caching is
//!   traffic-independent).
//! * (c) Switch #2: two tiers only (0.4 ms fast path, 8 ms controller).

use ofwire::flow_mod::FlowMod;
use ofwire::types::Dpid;
use simnet::trace::Figure;
use switchsim::harness::Testbed;
use switchsim::pipeline::Hit;
use switchsim::profiles::SwitchProfile;
use tango::pattern::RuleKind;

/// Shared driver: preinstall `rules` rules, then send `flows` flows of
/// two packets each (the first `rules` flows match) and record both
/// packets' delays, classified by serving tier.
fn tiered_delay(
    profile: SwitchProfile,
    rules: usize,
    flows: usize,
    title: &str,
    tier_labels: &[&str],
) -> Figure {
    let mut tb = Testbed::new(0xf16);
    let dpid = Dpid(1);
    tb.attach_default(dpid, profile);
    let fms: Vec<FlowMod> = (0..rules)
        .map(|i| FlowMod::add(RuleKind::L3.flow_match(i as u32), 100))
        .collect();
    let (ok, failed, _) = tb.batch(dpid, fms);
    assert_eq!(ok, rules);
    assert_eq!(failed, 0);

    let mut fig = Figure::new(title, "flow id", "delay (ms)");
    for label in tier_labels {
        fig.series_mut(*label);
    }
    for f in 0..flows {
        for _pkt in 0..2 {
            let key = ofwire::flow_match::FlowMatch::key_for_id(f as u32);
            let (hit, rtt) = tb.probe(dpid, &key);
            let tier = match hit {
                Hit::Table { level, .. } => level.min(tier_labels.len() - 2),
                Hit::Miss => tier_labels.len() - 1,
            };
            fig.series[tier].push(f as f64, rtt.as_millis_f64());
        }
    }
    fig
}

/// Fig 2(a): OVS three-tier delays.
#[must_use]
pub fn fig2a(rules: usize, flows: usize) -> Figure {
    tiered_delay(
        SwitchProfile::ovs(),
        rules,
        flows,
        "fig2a: Slow/Fast/Control Path Delays (OVS)",
        &["fast path", "slow path", "control path"],
    )
}

/// Fig 2(b): Switch #1 three-tier delays.
#[must_use]
pub fn fig2b(rules: usize, flows: usize) -> Figure {
    tiered_delay(
        SwitchProfile::vendor1(),
        rules,
        flows,
        "fig2b: Slow/Fast/Control Path Delays (HW Switch #1)",
        &["fast path", "slow path", "control path"],
    )
}

/// Fig 2(c): Switch #2 two-tier delays.
#[must_use]
pub fn fig2c(rules: usize, flows: usize) -> Figure {
    tiered_delay(
        SwitchProfile::vendor2(),
        rules,
        flows,
        "fig2c: Fast/Control Path Delays (HW Switch #2)",
        &["fast path", "control path"],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::trace::Summary;

    #[test]
    fn ovs_three_tiers_with_promotion() {
        // Scaled down: 20 rules, 40 flows.
        let fig = fig2a(20, 40);
        let fast = &fig.series[0];
        let slow = &fig.series[1];
        let ctrl = &fig.series[2];
        // Known flows: first packet slow, second fast → 20 each.
        assert_eq!(fast.len(), 20);
        assert_eq!(slow.len(), 20);
        // Unknown flows: both packets to the controller.
        assert_eq!(ctrl.len(), 40);
        let f = Summary::of(fast.points.iter().map(|p| p.1));
        let s = Summary::of(slow.points.iter().map(|p| p.1));
        let c = Summary::of(ctrl.points.iter().map(|p| p.1));
        assert!((f.mean - 3.0).abs() < 0.3, "fast {}", f.mean);
        assert!((s.mean - 4.5).abs() < 0.5, "slow {}", s.mean);
        assert!((c.mean - 4.65).abs() < 0.5, "ctrl {}", c.mean);
    }

    #[test]
    fn switch1_tiers_are_traffic_independent() {
        // Scaled: the TCAM boundary at 2047 is too big for a unit test,
        // so exercise the full-size experiment shape cheaply via the
        // boundary behaviour of the first packets only. 100 rules all
        // fit TCAM; flows beyond are controller.
        let fig = fig2b(100, 150);
        let fast = &fig.series[0];
        let slow = &fig.series[1];
        let ctrl = &fig.series[2];
        assert_eq!(fast.len(), 200, "both packets of known flows fast");
        assert_eq!(slow.len(), 0);
        assert_eq!(ctrl.len(), 100);
        let f = Summary::of(fast.points.iter().map(|p| p.1));
        assert!((f.mean - 0.665).abs() < 0.2, "fast {}", f.mean);
    }

    #[test]
    fn switch2_has_two_tiers() {
        let fig = fig2c(50, 80);
        assert_eq!(fig.series.len(), 2);
        assert_eq!(fig.series[0].len(), 100);
        assert_eq!(fig.series[1].len(), 60);
    }
}
