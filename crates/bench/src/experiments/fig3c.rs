//! Figure 3(c) — flow-installation time under four priority orderings
//! (descending / ascending / same / random) on Switch #1 and OVS.
//!
//! The paper's headline asymmetries: descending is up to 46× slower than
//! constant priority (2 000 rules), random 12× slower than ascending;
//! the four OVS curves coincide.

use crate::par::par_map;
use ofwire::types::Dpid;
use simnet::trace::Figure;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::pattern::{PriorityOrder, RuleKind, TangoPattern};
use tango::probe::ProbingEngine;

fn install_time_s(profile: SwitchProfile, n: usize, order: PriorityOrder) -> f64 {
    let mut tb = Testbed::new(0x3c);
    let dpid = Dpid(1);
    tb.attach_default(dpid, profile);
    let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
    let pat = TangoPattern::priority_insertion(n, order, RuleKind::L3);
    eng.run(&pat)
        .expect("pattern runs")
        .install_time()
        .as_secs_f64()
}

/// The four orderings, in the paper's legend order.
#[must_use]
pub fn orders() -> [PriorityOrder; 4] {
    [
        PriorityOrder::Descending,
        PriorityOrder::Ascending,
        PriorityOrder::Same,
        PriorityOrder::Random(0x3c),
    ]
}

/// Runs the sweep for both switches.
#[must_use]
pub fn run(sizes: &[usize]) -> Figure {
    let mut fig = Figure::new(
        "fig3c: Flow Installation Time by priority pattern",
        "number of flow_mod",
        "installation time (s)",
    );
    // Grid: 2 profiles × 4 orders × sizes, each cell a fresh fixed-seed
    // testbed — fan out and fill the series in legend order after.
    let arms = [
        (SwitchProfile::vendor1(), "HW switch #1"),
        (SwitchProfile::ovs(), "OVS"),
    ];
    let cells: Vec<(SwitchProfile, PriorityOrder, usize)> = arms
        .iter()
        .flat_map(|(profile, _)| {
            orders()
                .into_iter()
                .flat_map(move |order| sizes.iter().map(move |&n| (profile.clone(), order, n)))
        })
        .collect();
    let times = par_map(cells, |(profile, order, n)| {
        install_time_s(profile, n, order)
    });
    let mut at = times.into_iter();
    for (_, tag) in &arms {
        for order in orders() {
            let label = format!("{} ({tag})", order.label());
            let series = fig.series_mut(label);
            for &n in sizes {
                series.push(n as f64, at.next().expect("cell count"));
            }
        }
    }
    fig
}

/// Paper sweep sizes.
#[must_use]
pub fn paper_sizes() -> Vec<usize> {
    vec![20, 100, 500, 1000, 2000, 3500, 5000]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(fig: &Figure, label_frag: &str, idx: usize) -> f64 {
        fig.series
            .iter()
            .find(|s| s.label.contains(label_frag) && s.label.contains("HW"))
            .unwrap()
            .points[idx]
            .1
    }

    #[test]
    fn hardware_ordering_asymmetry() {
        let fig = run(&[1000]);
        let desc = total(&fig, "desc", 0);
        let asc = total(&fig, "asc", 0);
        let same = total(&fig, "same", 0);
        let rand = total(&fig, "random", 0);
        // desc ≈ base + s·n²/2 vs rand ≈ base + s·n²/4: ratio → 2 from
        // below as n grows; at 1000 rules it is ~1.8.
        assert!(desc > 1.5 * rand, "desc {desc} vs rand {rand}");
        assert!(rand > 2.0 * asc, "rand {rand} vs asc {asc}");
        assert!(
            (asc - same).abs() < 0.5 * same.max(asc),
            "asc {asc} same {same}"
        );
        // The descending/constant ratio is large (tens of ×) — the
        // paper's 46× observation at 2000 rules.
        assert!(desc / same > 5.0, "ratio {}", desc / same);
    }

    #[test]
    fn ovs_curves_overlap() {
        let fig = run(&[800]);
        let ovs: Vec<f64> = fig
            .series
            .iter()
            .filter(|s| s.label.contains("OVS"))
            .map(|s| s.points[0].1)
            .collect();
        assert_eq!(ovs.len(), 4);
        let max = ovs.iter().cloned().fold(f64::MIN, f64::max);
        let min = ovs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 1.2, "OVS spread {min}..{max}");
    }
}
