//! Figure 12 — the B4/Mininet traffic-engineering scenario: Dionysus vs
//! Tango on twelve OVS switches.
//!
//! The workload is a max-min-fair re-allocation after a traffic-matrix
//! change (`workloads::scenarios::b4_traffic_engineering`). On OVS the
//! priority pattern buys nothing (installation is priority-insensitive),
//! so the improvement comes from the rule-type pattern alone and is
//! modest (~8 % in the paper).

use crate::lower::{b4_testbed, lower_scenario};
use crate::par::par_map;
use simnet::trace::Figure;
use tango_sched::basic::{run_dionysus, run_tango_online, TangoMode};
use workloads::scenarios::b4_traffic_engineering;

/// Makespans in seconds: `(dionysus, tango)`.
///
/// Both arms replay the same scenario on identically-seeded but separate
/// testbeds, so they run concurrently.
#[must_use]
pub fn makespans_s(n_flows: usize, seed: u64) -> (f64, f64) {
    let scen = b4_traffic_engineering(n_flows, seed);
    let arms = par_map(vec![true, false], |dionysus| {
        let (mut tb, dpids) = b4_testbed(seed ^ 0xd);
        let mut dag = lower_scenario(&mut tb, &dpids, &scen);
        if dionysus {
            run_dionysus(&mut tb, &mut dag).makespan.as_secs_f64()
        } else {
            run_tango_online(&mut tb, &mut dag, TangoMode::TypeAndPriority)
                .makespan
                .as_secs_f64()
        }
    });
    (arms[0], arms[1])
}

/// Runs the figure (paper scale: 2 200 end-to-end requests).
#[must_use]
pub fn run(n_flows: usize) -> Figure {
    let (dio, tango) = makespans_s(n_flows, 0x12);
    let mut fig = Figure::new(
        "fig12: OVS TE Optimization (B4 topology)",
        "scheduler (0=Dionysus, 1=Tango)",
        "installation time (s)",
    );
    fig.series_mut("Dionysus").push(0.0, dio);
    fig.series_mut("Tango").push(1.0, tango);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tango_improvement_is_modest_on_ovs() {
        // Averaged over seeds: OVS is priority-insensitive, so the gap
        // is small (paper: ~8 %) — nothing like the hardware testbed's
        // 70 % — and may even be jitter-level at this reduced scale.
        let mut dio_sum = 0.0;
        let mut tango_sum = 0.0;
        for seed in [3u64, 4, 5] {
            let (d, t) = makespans_s(250, seed);
            dio_sum += d;
            tango_sum += t;
        }
        assert!(
            tango_sum <= dio_sum * 1.02,
            "tango ({tango_sum}) should not meaningfully lose to dionysus ({dio_sum})"
        );
        assert!(
            tango_sum > 0.5 * dio_sum,
            "OVS improvement should be modest: {tango_sum} vs {dio_sum}"
        );
    }
}
