//! Figure 11 — priority *sorting* vs priority *enforcement* on the
//! hardware testbed.
//!
//! Four scenarios: add-only flat DAG at 2.4 K rules; mixed ops flat DAG
//! at 2.4 K; mixed two-level DAG at 2.4 K; mixed two-level DAG at 3.2 K.
//! Arms: Dionysus (app-chosen random priorities, critical-path order),
//! Tango priority sorting (same priorities, ascending install), and
//! Tango priority enforcement (apps leave priorities unset; Tango picks
//! DAG-level priorities so batches install at a single priority).

use crate::lower::{enforce_dag_priorities, lower_scenario, triangle_testbed};
use crate::par::par_map;
use simnet::telemetry::{ChromeTrace, MetricsSnapshot, Recorder};
use simnet::trace::Figure;
use tango_sched::basic::{run_dionysus, run_tango_online, TangoMode};
use workloads::scenarios::{traffic_engineering, Scenario};
use workloads::topology::Topology;

/// The figure's arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arm {
    /// Critical-path baseline with app-chosen priorities.
    Dionysus,
    /// Tango reorders the app-chosen priorities (ascending adds).
    PrioritySorting,
    /// Apps leave priorities unset; Tango enforces DAG-level priorities.
    PriorityEnforcement,
}

impl Arm {
    /// Legend label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Arm::Dionysus => "Dionysus",
            Arm::PrioritySorting => "Tango (Priority Sorting)",
            Arm::PriorityEnforcement => "Tango (Priority Enforcement)",
        }
    }

    /// All arms in figure order.
    #[must_use]
    pub fn all() -> [Arm; 3] {
        [
            Arm::Dionysus,
            Arm::PrioritySorting,
            Arm::PriorityEnforcement,
        ]
    }
}

/// One scenario descriptor: `(label, add-only?, dag levels, rules)`.
#[must_use]
pub fn scenario_descriptors(scale: usize) -> Vec<(&'static str, bool, usize, usize)> {
    vec![
        ("add, DAG=1, 2.4K", true, 1, scale),
        ("mixed, DAG=1, 2.4K", false, 1, scale),
        ("mixed, DAG=2, 2.4K", false, 2, scale),
        ("mixed, DAG=2, 3.2K", false, 2, scale * 4 / 3),
    ]
}

fn build_scenario(
    add_only: bool,
    levels: usize,
    rules: usize,
    enforce: bool,
    seed: u64,
) -> Scenario {
    // The 2.4K/3.2K-rule scenarios exceed Switch #3's 767-entry TCAM, so
    // the priority experiments target the testbed's two Switch #1 units
    // (whose software tables absorb overflow) — the priority behaviour
    // under study is a Switch #1 phenomenon anyway.
    let topo = Topology::new(vec!["s1".into(), "s2".into()], vec![(0, 1, 10.0)]);
    let weights = if add_only { (1, 0, 0) } else { (2, 1, 1) };
    traffic_engineering(&topo, "fig11", rules, weights, levels, enforce, seed)
}

/// Makespan (s) of one scenario under one arm, plus — when `traced` —
/// the cell's telemetry recorder (spans over lowering and dispatch,
/// per-switch data-path counters).
#[must_use]
pub fn makespan_cell(
    add_only: bool,
    levels: usize,
    rules: usize,
    arm: Arm,
    seed: u64,
    traced: bool,
) -> (f64, Option<Box<Recorder>>) {
    let enforce = arm == Arm::PriorityEnforcement;
    let scen = build_scenario(add_only, levels, rules, enforce, seed);
    let (mut tb, dpids) = triangle_testbed(seed ^ 0x11);
    if traced {
        tb.enable_telemetry();
    }
    let mut dag = lower_scenario(&mut tb, &dpids, &scen);
    if enforce {
        enforce_dag_priorities(&mut dag);
    }
    let report = match arm {
        Arm::Dionysus => run_dionysus(&mut tb, &mut dag),
        Arm::PrioritySorting | Arm::PriorityEnforcement => {
            run_tango_online(&mut tb, &mut dag, TangoMode::TypeAndPriority)
        }
    };
    assert_eq!(report.failed, 0);
    (report.makespan.as_secs_f64(), tb.finish_recorder())
}

/// Makespan (s) of one scenario under one arm.
#[must_use]
pub fn makespan_s(add_only: bool, levels: usize, rules: usize, arm: Arm, seed: u64) -> f64 {
    makespan_cell(add_only, levels, rules, arm, seed, false).0
}

/// Runs the whole figure at `scale` rules for the 2.4 K scenarios
/// (paper scale: 2400).
#[must_use]
pub fn run(scale: usize) -> Figure {
    run_cells(scale, false).0
}

/// Runs the figure with telemetry enabled on every cell: returns the
/// figure (identical to [`run`]'s — recording never perturbs timing)
/// plus the merged Chrome trace JSON and metrics snapshot.
#[must_use]
pub fn run_traced(scale: usize) -> (Figure, String, MetricsSnapshot) {
    let (fig, cells) = run_cells(scale, true);
    let mut ct = ChromeTrace::new();
    for (label, rec) in &cells {
        if let Some(rec) = rec {
            ct.add_cell(label, rec);
        }
    }
    let metrics = Recorder::merge_metrics(cells.iter().filter_map(|(_, r)| r.as_deref()));
    (fig, ct.render(), metrics)
}

/// One traced cell: its trace-process label and (when tracing was on)
/// its recorder.
type TracedCell = (String, Option<Box<Recorder>>);

/// One cell of the grid: scenario index + label, `(add_only, levels,
/// rules)`, and the arm.
type Cell = (usize, &'static str, (bool, usize, usize), Arm);

/// The shared cell grid: 4 scenarios × 3 arms, every cell fully
/// self-seeded — fan out, collect by input index (so traced cells merge
/// in a thread-count-independent order).
fn run_cells(scale: usize, traced: bool) -> (Figure, Vec<TracedCell>) {
    let mut fig = Figure::new(
        "fig11: Hardware Testbed — priority sorting vs enforcement",
        "scenario index",
        "installation time (s)",
    );
    for arm in Arm::all() {
        fig.series_mut(arm.label());
    }
    let descriptors = scenario_descriptors(scale);
    let cells: Vec<Cell> = descriptors
        .into_iter()
        .enumerate()
        .flat_map(|(x, (label, add_only, levels, rules))| {
            Arm::all()
                .into_iter()
                .map(move |arm| (x, label, (add_only, levels, rules), arm))
        })
        .collect();
    let outs = par_map(cells, |(x, label, (add_only, levels, rules), arm)| {
        let (t, rec) = makespan_cell(add_only, levels, rules, arm, 0x1100 + x as u64, traced);
        (t, format!("fig11 {label}/{}", arm.label()), rec)
    });
    let arms = Arm::all().len();
    let mut traced_cells = Vec::with_capacity(outs.len());
    for (cell, (t, label, rec)) in outs.into_iter().enumerate() {
        let (x, si) = (cell / arms, cell % arms);
        fig.series[si].push(x as f64, t);
        traced_cells.push((label, rec));
    }
    (fig, traced_cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enforcement_beats_sorting_beats_dionysus_on_adds() {
        // The add-only flat scenario is where the paper sees the largest
        // gains (85 % sorting, 95 % enforcement).
        let dio = makespan_s(true, 1, 240, Arm::Dionysus, 1);
        let sort = makespan_s(true, 1, 240, Arm::PrioritySorting, 1);
        let enforce = makespan_s(true, 1, 240, Arm::PriorityEnforcement, 1);
        assert!(sort < dio, "sorting {sort} vs dionysus {dio}");
        assert!(
            enforce <= sort * 1.05,
            "enforcement {enforce} vs sorting {sort}"
        );
        // The margin grows with scale (85–95 % at the paper's 2 400
        // rules); at this 240-rule test scale demand only a clear win.
        assert!(
            enforce < 0.8 * dio,
            "enforcement {enforce} vs dionysus {dio}"
        );
    }

    #[test]
    fn deeper_dags_shrink_the_benefit() {
        let flat_gain = {
            let dio = makespan_s(false, 1, 240, Arm::Dionysus, 2);
            let tan = makespan_s(false, 1, 240, Arm::PrioritySorting, 2);
            dio / tan
        };
        let deep_gain = {
            let dio = makespan_s(false, 4, 240, Arm::Dionysus, 2);
            let tan = makespan_s(false, 4, 240, Arm::PrioritySorting, 2);
            dio / tan
        };
        assert!(
            deep_gain < flat_gain,
            "deep DAG gain {deep_gain} should trail flat gain {flat_gain}"
        );
    }

    #[test]
    fn figure_has_all_cells() {
        let fig = run(120);
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            assert_eq!(s.len(), 4, "{}", s.label);
        }
    }
}
