//! Figure 11 — priority *sorting* vs priority *enforcement* on the
//! hardware testbed.
//!
//! Four scenarios: add-only flat DAG at 2.4 K rules; mixed ops flat DAG
//! at 2.4 K; mixed two-level DAG at 2.4 K; mixed two-level DAG at 3.2 K.
//! Arms: Dionysus (app-chosen random priorities, critical-path order),
//! Tango priority sorting (same priorities, ascending install), and
//! Tango priority enforcement (apps leave priorities unset; Tango picks
//! DAG-level priorities so batches install at a single priority).

use crate::lower::{enforce_dag_priorities, lower_scenario, triangle_testbed};
use crate::par::par_map;
use simnet::trace::Figure;
use tango_sched::basic::{run_dionysus, run_tango_online, TangoMode};
use workloads::scenarios::{traffic_engineering, Scenario};
use workloads::topology::Topology;

/// The figure's arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arm {
    /// Critical-path baseline with app-chosen priorities.
    Dionysus,
    /// Tango reorders the app-chosen priorities (ascending adds).
    PrioritySorting,
    /// Apps leave priorities unset; Tango enforces DAG-level priorities.
    PriorityEnforcement,
}

impl Arm {
    /// Legend label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Arm::Dionysus => "Dionysus",
            Arm::PrioritySorting => "Tango (Priority Sorting)",
            Arm::PriorityEnforcement => "Tango (Priority Enforcement)",
        }
    }

    /// All arms in figure order.
    #[must_use]
    pub fn all() -> [Arm; 3] {
        [
            Arm::Dionysus,
            Arm::PrioritySorting,
            Arm::PriorityEnforcement,
        ]
    }
}

/// One scenario descriptor: `(label, add-only?, dag levels, rules)`.
#[must_use]
pub fn scenario_descriptors(scale: usize) -> Vec<(&'static str, bool, usize, usize)> {
    vec![
        ("add, DAG=1, 2.4K", true, 1, scale),
        ("mixed, DAG=1, 2.4K", false, 1, scale),
        ("mixed, DAG=2, 2.4K", false, 2, scale),
        ("mixed, DAG=2, 3.2K", false, 2, scale * 4 / 3),
    ]
}

fn build_scenario(
    add_only: bool,
    levels: usize,
    rules: usize,
    enforce: bool,
    seed: u64,
) -> Scenario {
    // The 2.4K/3.2K-rule scenarios exceed Switch #3's 767-entry TCAM, so
    // the priority experiments target the testbed's two Switch #1 units
    // (whose software tables absorb overflow) — the priority behaviour
    // under study is a Switch #1 phenomenon anyway.
    let topo = Topology::new(vec!["s1".into(), "s2".into()], vec![(0, 1, 10.0)]);
    let weights = if add_only { (1, 0, 0) } else { (2, 1, 1) };
    traffic_engineering(&topo, "fig11", rules, weights, levels, enforce, seed)
}

/// Makespan (s) of one scenario under one arm.
#[must_use]
pub fn makespan_s(add_only: bool, levels: usize, rules: usize, arm: Arm, seed: u64) -> f64 {
    let enforce = arm == Arm::PriorityEnforcement;
    let scen = build_scenario(add_only, levels, rules, enforce, seed);
    let (mut tb, dpids) = triangle_testbed(seed ^ 0x11);
    let mut dag = lower_scenario(&mut tb, &dpids, &scen);
    if enforce {
        enforce_dag_priorities(&mut dag);
    }
    let report = match arm {
        Arm::Dionysus => run_dionysus(&mut tb, &mut dag),
        Arm::PrioritySorting | Arm::PriorityEnforcement => {
            run_tango_online(&mut tb, &mut dag, TangoMode::TypeAndPriority)
        }
    };
    assert_eq!(report.failed, 0);
    report.makespan.as_secs_f64()
}

/// Runs the whole figure at `scale` rules for the 2.4 K scenarios
/// (paper scale: 2400).
#[must_use]
pub fn run(scale: usize) -> Figure {
    let mut fig = Figure::new(
        "fig11: Hardware Testbed — priority sorting vs enforcement",
        "scenario index",
        "installation time (s)",
    );
    for arm in Arm::all() {
        fig.series_mut(arm.label());
    }
    // 4 scenarios × 3 arms, every cell fully self-seeded — fan out.
    let descriptors = scenario_descriptors(scale);
    let cells: Vec<(usize, (bool, usize, usize), Arm)> = descriptors
        .into_iter()
        .enumerate()
        .flat_map(|(x, (_, add_only, levels, rules))| {
            Arm::all()
                .into_iter()
                .map(move |arm| (x, (add_only, levels, rules), arm))
        })
        .collect();
    let times = par_map(cells, |(x, (add_only, levels, rules), arm)| {
        makespan_s(add_only, levels, rules, arm, 0x1100 + x as u64)
    });
    let arms = Arm::all().len();
    for (cell, t) in times.into_iter().enumerate() {
        let (x, si) = (cell / arms, cell % arms);
        fig.series[si].push(x as f64, t);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enforcement_beats_sorting_beats_dionysus_on_adds() {
        // The add-only flat scenario is where the paper sees the largest
        // gains (85 % sorting, 95 % enforcement).
        let dio = makespan_s(true, 1, 240, Arm::Dionysus, 1);
        let sort = makespan_s(true, 1, 240, Arm::PrioritySorting, 1);
        let enforce = makespan_s(true, 1, 240, Arm::PriorityEnforcement, 1);
        assert!(sort < dio, "sorting {sort} vs dionysus {dio}");
        assert!(
            enforce <= sort * 1.05,
            "enforcement {enforce} vs sorting {sort}"
        );
        // The margin grows with scale (85–95 % at the paper's 2 400
        // rules); at this 240-rule test scale demand only a clear win.
        assert!(
            enforce < 0.8 * dio,
            "enforcement {enforce} vs dionysus {dio}"
        );
    }

    #[test]
    fn deeper_dags_shrink_the_benefit() {
        let flat_gain = {
            let dio = makespan_s(false, 1, 240, Arm::Dionysus, 2);
            let tan = makespan_s(false, 1, 240, Arm::PrioritySorting, 2);
            dio / tan
        };
        let deep_gain = {
            let dio = makespan_s(false, 4, 240, Arm::Dionysus, 2);
            let tan = makespan_s(false, 4, 240, Arm::PrioritySorting, 2);
            dio / tan
        };
        assert!(
            deep_gain < flat_gain,
            "deep DAG gain {deep_gain} should trail flat gain {flat_gain}"
        );
    }

    #[test]
    fn figure_has_all_cells() {
        let fig = run(120);
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            assert_eq!(s.len(), 4, "{}", s.label);
        }
    }
}
