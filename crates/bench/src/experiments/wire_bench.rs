//! `wire_bench`: sustained flow-mod throughput and ack-latency tails of
//! the real-transport control plane (`tango-net`) on loopback TCP.
//!
//! Each cell spawns a fresh realtime [`AgentServer`] hosting one OVS
//! agent per connection behind `shards` reactor shards, then drives
//! every connection with a pipelined flow-mod stream (bounded in-flight
//! window *and* byte cap, coalesced adaptive barriers). The sweep
//! crosses the shard count with connection counts and pipeline windows;
//! the headline configuration (8 shards, 256 connections, deep window)
//! is the crate's ≥1M flow_mods/sec target.
//!
//! Numbers here are *wall-clock* — they vary run to run and by host —
//! so this experiment never writes under `results/` (which must stay
//! byte-identical); its artifact is `BENCH_wire.json` next to it,
//! alongside the suite's other perf baselines. The JSON records a
//! per-shard breakdown (connections served, ops, bytes, wakeups,
//! backpressure stalls) so a skewed partition or a stalled shard is
//! visible in the artifact, not just the aggregate.

use simnet::trace::Summary;
use switchsim::profiles::SwitchProfile;
use tango_net::bench::{run_wire_bench, WireBenchConfig, WireBenchResult};
use tango_net::server::{AgentServer, ServerConfig, ServerMode, ShardStats};

/// The sweep grid: (connections, window). Barrier coalescing scales
/// with the window (one fence per quarter-window, shrunk adaptively).
const GRID: &[(usize, usize)] = &[
    (16, 16),
    (16, 128),
    (64, 16),
    (64, 128),
    (256, 16),
    (256, 128),
];

/// The shard axis of the sweep.
const SHARDS: &[usize] = &[1, 2, 4, 8];
/// Quick (CI) runs keep the full connection grid but sample the shard
/// axis at its ends.
const SHARDS_QUICK: &[usize] = &[1, 8];

/// One sweep cell: the client-side measurement plus the server's
/// per-shard counters.
#[derive(Debug, Clone)]
pub struct WireCell {
    /// Reactor shard count the server ran with.
    pub shards: usize,
    /// Client-side measurement.
    pub result: WireBenchResult,
    /// Per-shard server counters (length == `shards`).
    pub shard_stats: Vec<ShardStats>,
}

/// Runs the sweep. `total_ops` is the flow-mod budget per cell, split
/// evenly across its connections; `quick` samples the shard axis at
/// its ends instead of fully.
pub fn run(total_ops: usize, quick: bool) -> Vec<WireCell> {
    let shard_axis = if quick { SHARDS_QUICK } else { SHARDS };
    let mut cells = Vec::new();
    for &shards in shard_axis {
        for &(connections, window) in GRID {
            let roster = (1..=connections as u64)
                .map(|i| (ofwire::types::Dpid(i), SwitchProfile::ovs()))
                .collect();
            let server = AgentServer::spawn_with(
                1,
                roster,
                ServerMode::Realtime,
                ServerConfig {
                    shards,
                    telemetry: false,
                },
            )
            .expect("spawn wire_bench server");
            let mut cfg = WireBenchConfig::new(
                connections,
                window,
                (window / 4).max(1),
                (total_ops / connections).max(window),
            );
            if connections >= 256 {
                // The stress cells get a tighter ack budget: with 256
                // connections the scheduling-latency floor sits near
                // the default target, and a controller that can't meet
                // its target holds depth (and the p99) higher than one
                // probing a reachable one. 5 ms keeps the p99 near
                // 25 ms where 10 ms leaves it near 45.
                cfg.target_ack_us = 5_000;
            }
            let result = run_wire_bench(server.addr(), cfg).expect("wire_bench cell runs");
            let stats = server.shutdown().expect("wire_bench server exits");
            assert_eq!(stats.errors, 0, "protocol violations during bench");
            cells.push(WireCell {
                shards,
                result,
                shard_stats: stats.shards,
            });
        }
    }
    cells
}

/// Renders the sweep as the aligned text table the runner prints.
#[must_use]
pub fn render(cells: &[WireCell]) -> String {
    let mut out = String::new();
    out.push_str("shards  conns  window  flow_mods    kfm/s    p50 ms   p90 ms   p99 ms  stalls\n");
    out.push_str("-----------------------------------------------------------------------------\n");
    for cell in cells {
        let r = &cell.result;
        let c = &r.config;
        let stalls: u64 = cell.shard_stats.iter().map(|s| s.watermark_stalls).sum();
        out.push_str(&format!(
            "{:>6}  {:>5}  {:>6}  {:>9}  {:>7.1}  {:>7.3}  {:>7.3}  {:>7.3}  {:>6}\n",
            cell.shards,
            c.connections,
            c.window,
            r.total_flow_mods,
            r.flow_mods_per_sec / 1e3,
            r.ack_latency_ms.p50,
            r.ack_latency_ms.p90,
            r.ack_latency_ms.p99,
            stalls,
        ));
    }
    if let Some(best) = cells.iter().max_by(|a, b| {
        a.result
            .flow_mods_per_sec
            .total_cmp(&b.result.flow_mods_per_sec)
    }) {
        out.push_str(&format!(
            "best: {:.0} flow_mods/sec at {} shards x {} conns x window {}\n",
            best.result.flow_mods_per_sec,
            best.shards,
            best.result.config.connections,
            best.result.config.window,
        ));
    }
    out
}

/// The `BENCH_wire.json` document for a finished sweep.
#[must_use]
pub fn to_json(cells: &[WireCell], quick: bool) -> tango::json::Value {
    use tango::json::Value;
    let latency = |s: &Summary| {
        Value::Obj(vec![
            ("n".into(), Value::num(s.n as f64)),
            ("mean".into(), Value::num(s.mean)),
            ("p50".into(), Value::num(s.p50)),
            ("p90".into(), Value::num(s.p90)),
            ("p95".into(), Value::num(s.p95)),
            ("p99".into(), Value::num(s.p99)),
            ("max".into(), Value::num(s.max)),
        ])
    };
    let json_cells: Vec<Value> = cells
        .iter()
        .map(|cell| {
            let r = &cell.result;
            let per_shard: Vec<Value> = cell
                .shard_stats
                .iter()
                .map(|s| {
                    Value::Obj(vec![
                        ("shard".into(), Value::num(s.shard as f64)),
                        ("conns".into(), Value::num(s.conns as f64)),
                        ("ops".into(), Value::num(s.ops as f64)),
                        (
                            "flow_mods_per_sec".into(),
                            Value::num(s.ops as f64 / r.elapsed_secs),
                        ),
                        ("wakeups".into(), Value::num(s.wakeups as f64)),
                        ("bytes_in".into(), Value::num(s.bytes_in as f64)),
                        ("bytes_out".into(), Value::num(s.bytes_out as f64)),
                        ("would_block".into(), Value::num(s.would_block as f64)),
                        (
                            "watermark_stalls".into(),
                            Value::num(s.watermark_stalls as f64),
                        ),
                    ])
                })
                .collect();
            Value::Obj(vec![
                ("shards".into(), Value::num(cell.shards as f64)),
                (
                    "connections".into(),
                    Value::num(r.config.connections as f64),
                ),
                ("window".into(), Value::num(r.config.window as f64)),
                (
                    "barrier_every".into(),
                    Value::num(r.config.barrier_every as f64),
                ),
                (
                    "ops_per_conn".into(),
                    Value::num(r.config.ops_per_conn as f64),
                ),
                (
                    "max_inflight_bytes".into(),
                    Value::num(r.config.max_inflight_bytes as f64),
                ),
                (
                    "target_ack_us".into(),
                    Value::num(r.config.target_ack_us as f64),
                ),
                (
                    "client_threads".into(),
                    Value::num(r.config.client_threads as f64),
                ),
                (
                    "total_flow_mods".into(),
                    Value::num(r.total_flow_mods as f64),
                ),
                ("elapsed_secs".into(), Value::num(r.elapsed_secs)),
                ("flow_mods_per_sec".into(), Value::num(r.flow_mods_per_sec)),
                ("errors".into(), Value::num(r.errors as f64)),
                ("ack_latency_ms".into(), latency(&r.ack_latency_ms)),
                ("per_shard".into(), Value::Arr(per_shard)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("quick".into(), Value::Bool(quick)),
        ("cells".into(), Value::Arr(json_cells)),
    ])
}
