//! `wire_bench`: sustained flow-mod throughput and ack-latency tails of
//! the real-transport control plane (`tango-net`) on loopback TCP.
//!
//! Each cell spawns a fresh realtime [`AgentServer`] hosting one OVS
//! agent per connection, then drives every connection with a pipelined
//! flow-mod stream (bounded in-flight window, coalesced barriers) from
//! one single-threaded client. The sweep crosses connection counts with
//! pipeline windows; the headline configuration (256 connections, deep
//! window) is the crate's ≥100k flow_mods/sec target.
//!
//! Numbers here are *wall-clock* — they vary run to run and by host —
//! so this experiment never writes under `results/` (which must stay
//! byte-identical); its artifact is `BENCH_wire.json` next to it,
//! alongside the suite's other perf baselines.

use simnet::trace::Summary;
use switchsim::profiles::SwitchProfile;
use tango_net::bench::{run_wire_bench, WireBenchConfig, WireBenchResult};
use tango_net::server::{AgentServer, ServerMode};

/// The sweep grid: (connections, window). Barrier coalescing scales
/// with the window (one fence per quarter-window).
const GRID: &[(usize, usize)] = &[
    (16, 16),
    (16, 128),
    (64, 16),
    (64, 128),
    (256, 16),
    (256, 128),
];

/// Runs the sweep. `total_ops` is the flow-mod budget per cell, split
/// evenly across its connections.
pub fn run(total_ops: usize) -> Vec<WireBenchResult> {
    let mut results = Vec::new();
    for &(connections, window) in GRID {
        let roster = (1..=connections as u64)
            .map(|i| (ofwire::types::Dpid(i), SwitchProfile::ovs()))
            .collect();
        let server =
            AgentServer::spawn(1, roster, ServerMode::Realtime).expect("spawn wire_bench server");
        let cfg = WireBenchConfig {
            connections,
            window,
            barrier_every: (window / 4).max(1),
            ops_per_conn: (total_ops / connections).max(window),
        };
        let result = run_wire_bench(server.addr(), cfg).expect("wire_bench cell runs");
        let stats = server.shutdown().expect("wire_bench server exits");
        assert_eq!(stats.errors, 0, "protocol violations during bench");
        results.push(result);
    }
    results
}

/// Renders the sweep as the aligned text table the runner prints.
#[must_use]
pub fn render(results: &[WireBenchResult]) -> String {
    let mut out = String::new();
    out.push_str("conns  window  fence   flow_mods    kfm/s    p50 ms   p90 ms   p99 ms\n");
    out.push_str("---------------------------------------------------------------------\n");
    for r in results {
        let c = &r.config;
        out.push_str(&format!(
            "{:>5}  {:>6}  {:>5}  {:>10}  {:>7.1}  {:>7.3}  {:>7.3}  {:>7.3}\n",
            c.connections,
            c.window,
            c.barrier_every,
            r.total_flow_mods,
            r.flow_mods_per_sec / 1e3,
            r.ack_latency_ms.p50,
            r.ack_latency_ms.p90,
            r.ack_latency_ms.p99,
        ));
    }
    out
}

/// The `BENCH_wire.json` document for a finished sweep.
#[must_use]
pub fn to_json(results: &[WireBenchResult], quick: bool) -> tango::json::Value {
    use tango::json::Value;
    let latency = |s: &Summary| {
        Value::Obj(vec![
            ("n".into(), Value::num(s.n as f64)),
            ("mean".into(), Value::num(s.mean)),
            ("p50".into(), Value::num(s.p50)),
            ("p90".into(), Value::num(s.p90)),
            ("p95".into(), Value::num(s.p95)),
            ("p99".into(), Value::num(s.p99)),
            ("max".into(), Value::num(s.max)),
        ])
    };
    let cells: Vec<Value> = results
        .iter()
        .map(|r| {
            Value::Obj(vec![
                (
                    "connections".into(),
                    Value::num(r.config.connections as f64),
                ),
                ("window".into(), Value::num(r.config.window as f64)),
                (
                    "barrier_every".into(),
                    Value::num(r.config.barrier_every as f64),
                ),
                (
                    "ops_per_conn".into(),
                    Value::num(r.config.ops_per_conn as f64),
                ),
                (
                    "total_flow_mods".into(),
                    Value::num(r.total_flow_mods as f64),
                ),
                ("elapsed_secs".into(), Value::num(r.elapsed_secs)),
                ("flow_mods_per_sec".into(), Value::num(r.flow_mods_per_sec)),
                ("errors".into(), Value::num(r.errors as f64)),
                ("ack_latency_ms".into(), latency(&r.ack_latency_ms)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("quick".into(), Value::Bool(quick)),
        ("cells".into(), Value::Arr(cells)),
    ])
}
