//! Figure 10 — network-wide optimization on the hardware testbed:
//! link-failure and two traffic-engineering scenarios, comparing
//! Dionysus against Tango with rule-type patterns only and Tango with
//! rule-type + priority patterns.

use crate::lower::{lower_scenario, triangle_testbed};
use crate::par::par_map;
use simnet::trace::Figure;
use tango_sched::basic::{run_dionysus, run_tango_online, TangoMode};
use workloads::scenarios::{link_failure, traffic_engineering, Scenario};
use workloads::topology::Topology;

/// The three scheduler arms of the figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arm {
    /// Critical-path baseline.
    Dionysus,
    /// Tango with rule-type ordering only.
    TangoType,
    /// Tango with rule-type + priority ordering.
    TangoTypePriority,
}

impl Arm {
    /// Legend label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Arm::Dionysus => "Dionysus",
            Arm::TangoType => "Tango (Type)",
            Arm::TangoTypePriority => "Tango (Type+Priority)",
        }
    }

    /// All arms in figure order.
    #[must_use]
    pub fn all() -> [Arm; 3] {
        [Arm::Dionysus, Arm::TangoType, Arm::TangoTypePriority]
    }
}

/// Executes one scenario under one arm, returning the makespan in
/// seconds.
#[must_use]
pub fn makespan_s(scen: &Scenario, arm: Arm, seed: u64) -> f64 {
    let (mut tb, dpids) = triangle_testbed(seed);
    let mut dag = lower_scenario(&mut tb, &dpids, scen);
    let report = match arm {
        Arm::Dionysus => run_dionysus(&mut tb, &mut dag),
        Arm::TangoType => run_tango_online(&mut tb, &mut dag, TangoMode::TypeOnly),
        Arm::TangoTypePriority => run_tango_online(&mut tb, &mut dag, TangoMode::TypeAndPriority),
    };
    assert_eq!(report.failed, 0, "{} {}", scen.name, arm.label());
    report.makespan.as_secs_f64()
}

/// The paper's three scenarios at the given scale (paper scale:
/// `lf_flows = 400`, `te_requests = 800`).
#[must_use]
pub fn scenarios(lf_flows: usize, te_requests: usize) -> Vec<Scenario> {
    let topo = Topology::triangle();
    vec![
        link_failure(&topo, (0, 1), lf_flows, 0x10),
        traffic_engineering(&topo, "TE 1", te_requests, (2, 1, 1), 1, false, 0x11),
        traffic_engineering(&topo, "TE 2", te_requests, (1, 1, 1), 1, false, 0x12),
    ]
}

/// Runs the whole figure.
#[must_use]
pub fn run(lf_flows: usize, te_requests: usize) -> Figure {
    let mut fig = Figure::new(
        "fig10: Hardware Testbed Network-Wide Optimization",
        "scenario (0=LF, 1=TE 1, 2=TE 2)",
        "installation time (s)",
    );
    for arm in Arm::all() {
        fig.series_mut(arm.label());
    }
    // 3 scenarios × 3 arms, each on its own seeded testbed — fan out.
    let scens = scenarios(lf_flows, te_requests);
    let cells: Vec<(usize, Arm)> = (0..scens.len())
        .flat_map(|x| Arm::all().into_iter().map(move |arm| (x, arm)))
        .collect();
    let times = par_map(cells, |(x, arm)| {
        makespan_s(&scens[x], arm, 0x10aa + x as u64)
    });
    for x in 0..scens.len() {
        for si in 0..Arm::all().len() {
            fig.series[si].push(x as f64, times[x * Arm::all().len() + si]);
        }
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tango_beats_dionysus_on_te() {
        let fig = run(200, 300);
        let at = |label: &str, x: usize| {
            fig.series.iter().find(|s| s.label == label).unwrap().points[x].1
        };
        for scen in [1usize, 2] {
            let dio = at("Dionysus", scen);
            let t_type = at("Tango (Type)", scen);
            let t_full = at("Tango (Type+Priority)", scen);
            assert!(
                t_full <= t_type,
                "scenario {scen}: full {t_full} vs type {t_type}"
            );
            assert!(
                t_full < dio,
                "scenario {scen}: tango {t_full} vs dionysus {dio}"
            );
        }
        // LF: only adds on s3 and mods on s1 — no room for type
        // reordering (the paper reports 0 % for Tango-Type), but
        // priority sorting still helps.
        let lf_dio = at("Dionysus", 0);
        let lf_full = at("Tango (Type+Priority)", 0);
        assert!(lf_full < lf_dio, "LF: {lf_full} vs {lf_dio}");
    }
}
