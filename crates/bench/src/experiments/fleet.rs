//! Fleet-scale inference throughput: N switches characterized
//! concurrently over one shared control path versus one at a time.
//!
//! The driver refactor's payoff claim: `tango::fleet::run_inference`
//! interleaves full Algorithm 1 runs so the fleet costs roughly the
//! wall-clock of its slowest member, not the sum — while every
//! per-switch estimate stays bit-identical to the sequential run. This
//! experiment sweeps fleet widths over generic policy-cached switches
//! and reports both the (virtual) wall-clock compression and the
//! identity check.

use crate::par::par_map;
use crate::report::format_table;
use ofwire::types::Dpid;
use switchsim::cache::CachePolicy;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::db::TangoDb;
use tango::fleet::{run_inference, FleetJob};
use tango::infer_size::{probe_sizes, SizeEstimate, SizeProbeConfig};
use tango::pattern::RuleKind;
use tango::probe::ProbingEngine;

/// One fleet width's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetScalingRow {
    /// Number of switches characterized.
    pub switches: usize,
    /// Virtual seconds to probe them one at a time.
    pub sequential_s: f64,
    /// Virtual seconds for the interleaved fleet run.
    pub fleet_s: f64,
    /// `sequential_s / fleet_s`.
    pub speedup: f64,
    /// Whether every per-switch estimate matched the sequential run
    /// field for field.
    pub identical: bool,
}

/// The cache policies cycled across fleet members, so wider fleets are
/// also more heterogeneous.
fn policies() -> [CachePolicy; 6] {
    [
        CachePolicy::fifo(),
        CachePolicy::lru(),
        CachePolicy::lfu(),
        CachePolicy::priority(),
        CachePolicy::priority_then_lru(),
        CachePolicy::lfu_then_fifo(),
    ]
}

fn build(width: usize, tcam: u64, seed: u64) -> Testbed {
    let mut tb = Testbed::new(seed);
    let policies = policies();
    for i in 0..width {
        let policy = policies[i % policies.len()].clone();
        tb.attach_default(
            Dpid(i as u64 + 1),
            SwitchProfile::generic_cached(tcam, policy),
        );
    }
    tb
}

fn config(dpid: Dpid, tcam: u64) -> SizeProbeConfig {
    SizeProbeConfig {
        max_flows: (tcam as usize) * 2,
        seed: 0xf1ee7 ^ dpid.0,
        ..SizeProbeConfig::default()
    }
}

/// Runs the scaling sweep: for each width, size-infers the whole fleet
/// sequentially and then concurrently on identically-seeded testbeds.
#[must_use]
pub fn run(widths: &[usize], tcam: u64) -> Vec<FleetScalingRow> {
    // Each width owns both of its testbeds (sequential and fleet), so
    // the sweep fans out across widths.
    par_map(widths.to_vec(), |width| {
        let dpids: Vec<Dpid> = (1..=width as u64).map(Dpid).collect();

        let mut seq_tb = build(width, tcam, 7);
        let seq_start = seq_tb.now();
        let seq: Vec<SizeEstimate> = dpids
            .iter()
            .map(|&d| {
                let mut eng = ProbingEngine::new(&mut seq_tb, d, RuleKind::L3);
                probe_sizes(&mut eng, &config(d, tcam)).expect("sequential size probe")
            })
            .collect();
        let sequential_s = seq_tb.now().since(seq_start).as_millis_f64() / 1000.0;

        let mut fleet_tb = build(width, tcam, 7);
        let fleet_start = fleet_tb.now();
        let jobs: Vec<FleetJob> = dpids
            .iter()
            .map(|&d| FleetJob::size(d, RuleKind::L3, config(d, tcam)))
            .collect();
        let outcomes = run_inference(&mut fleet_tb, &jobs).expect("fleet inference");
        let fleet_s = fleet_tb.now().since(fleet_start).as_millis_f64() / 1000.0;

        let identical = seq
            .iter()
            .zip(&outcomes)
            .all(|(s, o)| o.as_size() == Some(s));
        FleetScalingRow {
            switches: width,
            sequential_s,
            fleet_s,
            speedup: sequential_s / fleet_s,
            identical,
        }
    })
}

/// Characterizes a four-switch fleet and folds the outcomes into a
/// [`TangoDb`] — the artifact the scheduler loads back with
/// [`TangoDb::load_json`].
#[must_use]
pub fn knowledge_db(tcam: u64) -> TangoDb {
    let width = 4;
    let mut tb = build(width, tcam, 7);
    let jobs: Vec<FleetJob> = (1..=width as u64)
        .map(|d| FleetJob::size(Dpid(d), RuleKind::L3, config(Dpid(d), tcam)))
        .collect();
    let outcomes = run_inference(&mut tb, &jobs).expect("fleet inference");
    let mut db = TangoDb::new();
    db.ingest_fleet(&jobs, &outcomes);
    db
}

/// Renders the scaling table.
#[must_use]
pub fn render(rows: &[FleetScalingRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.switches.to_string(),
                format!("{:.2}", r.sequential_s),
                format!("{:.2}", r.fleet_s),
                format!("{:.2}x", r.speedup),
                if r.identical { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    format_table(
        &[
            "switches",
            "sequential (s)",
            "fleet (s)",
            "speedup",
            "bit-identical",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_is_identical_and_faster_at_every_width() {
        let rows = run(&[1, 2, 4], 48);
        for r in &rows {
            assert!(r.identical, "width {} diverged from sequential", r.switches);
        }
        assert!(
            (rows[0].speedup - 1.0).abs() < 1e-9,
            "a one-switch fleet is exactly the sequential run"
        );
        assert!(
            rows[2].speedup > rows[1].speedup && rows[1].speedup > 1.0,
            "speedup grows with width: {:?}",
            rows.iter().map(|r| r.speedup).collect::<Vec<_>>()
        );
    }

    #[test]
    fn knowledge_db_holds_every_fleet_member() {
        let db = knowledge_db(48);
        for d in 1..=4u64 {
            let size = db
                .switch(Dpid(d))
                .and_then(|k| k.size.as_ref())
                .expect("size knowledge ingested");
            assert!(size.m > 0);
        }
    }
}
