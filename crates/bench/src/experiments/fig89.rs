//! Figures 8 and 9 — ClassBench installation time under four
//! priority-assignment × installation-order schemes, on OVS (Fig 8) and
//! on Switch #1 (Fig 9).
//!
//! Schemes (§7.1): **Topo Asc** — topological (minimal-level) priorities
//! installed in the probed-optimal ascending order; **R Asc** — 1-to-1
//! priorities, ascending order; **R Rand** / **Topo Rand** — the same
//! assignments installed in random order. Each scheme runs `reps` times
//! (the paper's ten "scenarios") with different link-jitter/shuffle
//! seeds.

use crate::par::par_map;
use ofwire::flow_mod::FlowMod;
use ofwire::types::Dpid;
use simnet::rng::DetRng;
use simnet::trace::Figure;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango_sched::priority::{
    ascending_install_order, r_priorities, topological_priorities, PriorityAssignment,
};
use workloads::classbench::{generate, ClassBenchConfig};
use workloads::dependency::rule_dependencies;

/// Which switch the figure targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Fig 8: Open vSwitch.
    Ovs,
    /// Fig 9: hardware Switch #1.
    Switch1,
}

impl Target {
    fn profile(self) -> SwitchProfile {
        match self {
            Target::Ovs => SwitchProfile::ovs(),
            Target::Switch1 => SwitchProfile::vendor1(),
        }
    }

    fn label(self) -> &'static str {
        match self {
            Target::Ovs => "OVS",
            Target::Switch1 => "HW Switch #1",
        }
    }
}

/// One scheme: a priority assignment plus an installation order.
fn install_time_s(
    target: Target,
    matches: &[ofwire::flow_match::FlowMatch],
    assignment: &PriorityAssignment,
    order: &[usize],
    seed: u64,
) -> f64 {
    let mut tb = Testbed::new(seed);
    let dpid = Dpid(1);
    tb.attach_default(dpid, target.profile());
    let fms: Vec<FlowMod> = order
        .iter()
        .map(|&i| FlowMod::add(matches[i], assignment.priorities[i]))
        .collect();
    let (_ok, failed, elapsed) = tb.batch(dpid, fms);
    assert_eq!(failed, 0, "classbench sets fit the tables");
    elapsed.as_secs_f64()
}

/// Runs one ClassBench file on one target for `reps` repetitions.
#[must_use]
pub fn run(target: Target, file: &str, cfg: &ClassBenchConfig, reps: usize) -> Figure {
    let rules = generate(cfg);
    let matches: Vec<_> = rules.iter().map(|r| r.flow_match).collect();
    let deps = rule_dependencies(&matches);
    let topo = topological_priorities(matches.len(), &deps).expect("ClassBench ACLs are acyclic");
    let r = r_priorities(matches.len(), &deps).expect("ClassBench ACLs are acyclic");

    let order_label = match target {
        // The paper labels the probed-optimal order "Desc" for OVS
        // (where order is immaterial) and "Asc" for the hardware switch;
        // both are the ascending-priority order here.
        Target::Ovs => "Desc",
        Target::Switch1 => "Asc",
    };
    let mut fig = Figure::new(
        format!("{} Optimization Results ({file})", target.label()),
        "scenario",
        "installation time (s)",
    );
    fig.series_mut(format!("Topo {order_label}"));
    fig.series_mut(format!("R {order_label}"));
    fig.series_mut("R Rand");
    fig.series_mut("Topo Rand");
    // Shared inputs (rule set, assignments) are computed once above;
    // the reps × 4 scheme cells are independent seeded testbeds, so the
    // whole grid fans out at once.
    let topo_opt = ascending_install_order(&topo.priorities);
    let r_opt = ascending_install_order(&r.priorities);
    let times = par_map((0..reps * 4).collect(), |cell: usize| {
        let rep = cell / 4;
        let seed = 0x89_00 + rep as u64;
        let mut rng = DetRng::new(seed);
        let mut random_order: Vec<usize> = (0..matches.len()).collect();
        rng.shuffle(&mut random_order);
        let (assignment, order) = match cell % 4 {
            0 => (&topo, &topo_opt),
            1 => (&r, &r_opt),
            2 => (&r, &random_order),
            _ => (&topo, &random_order),
        };
        install_time_s(target, &matches, assignment, order, seed)
    });
    for rep in 0..reps {
        let x = (rep + 1) as f64;
        for scheme in 0..4 {
            fig.series[scheme].push(x, times[rep * 4 + scheme]);
        }
    }
    fig
}

/// Mean seconds of a series.
#[must_use]
pub fn series_mean(fig: &Figure, label: &str) -> f64 {
    fig.series
        .iter()
        .find(|s| s.label == label)
        .map(|s| s.summary().mean)
        .expect("known series")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ClassBenchConfig {
        ClassBenchConfig {
            rules: 200,
            levels: 20,
            cluster_depth: 3,
            seed: 0x89,
        }
    }

    #[test]
    fn switch1_topo_ascending_wins() {
        let fig = run(Target::Switch1, "small", &small_cfg(), 3);
        let topo_asc = series_mean(&fig, "Topo Asc");
        let r_asc = series_mean(&fig, "R Asc");
        let topo_rand = series_mean(&fig, "Topo Rand");
        let r_rand = series_mean(&fig, "R Rand");
        // Fig 9: the optimal order is far below random (the paper's
        // 80–89 % reductions).
        // At the paper's ~830-rule scale the reduction is 80–89 %; at
        // this 200-rule test scale the shift term is smaller but the
        // win must still be decisive.
        assert!(
            topo_asc < 0.75 * topo_rand,
            "topo asc {topo_asc} vs topo rand {topo_rand}"
        );
        assert!(r_asc < r_rand, "r asc {r_asc} vs r rand {r_rand}");
        // Fewer distinct priorities (topo) can't hurt under ascending
        // installation.
        assert!(topo_asc <= 1.1 * r_asc);
    }

    #[test]
    fn ovs_differences_are_marginal() {
        let fig = run(Target::Ovs, "small", &small_cfg(), 2);
        let means: Vec<f64> = fig.series.iter().map(|s| s.summary().mean).collect();
        let max = means.iter().cloned().fold(f64::MIN, f64::max);
        let min = means.iter().cloned().fold(f64::MAX, f64::min);
        // Fig 8: OVS improvements are ~10 %, not the hardware's 5–10×.
        assert!(max / min < 1.3, "OVS spread {min}..{max}");
    }
}
