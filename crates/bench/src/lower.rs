//! Lowering: turning workload [`Scenario`]s into concrete testbeds and
//! request DAGs.

use ofwire::flow_match::FlowMatch;
use ofwire::flow_mod::FlowMod;
use ofwire::types::Dpid;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango_sched::dag::{NodeId, RequestDag};
use tango_sched::request::ReqElem;
use workloads::scenarios::{ScenOp, Scenario};
use workloads::topology::Topology;

/// The paper's hardware testbed: s1, s2 from Vendor #1 and s3 from
/// Vendor #3, fully connected. Returns the testbed and the dpids in
/// topology-node order.
#[must_use]
pub fn triangle_testbed(seed: u64) -> (Testbed, Vec<Dpid>) {
    let mut tb = Testbed::new(seed);
    let dpids = attach_triangle(&mut tb);
    (tb, dpids)
}

/// Attaches the triangle's three switches to an existing testbed.
pub fn attach_triangle(tb: &mut Testbed) -> Vec<Dpid> {
    let profiles = [
        SwitchProfile::vendor1(),
        SwitchProfile::vendor1(),
        SwitchProfile::vendor3(),
    ];
    profiles
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            let dpid = Dpid(i as u64 + 1);
            tb.attach_default(dpid, p);
            dpid
        })
        .collect()
}

/// A B4-shaped testbed: one OVS switch per site (the Mininet setup of
/// Fig 12).
#[must_use]
pub fn b4_testbed(seed: u64) -> (Testbed, Vec<Dpid>) {
    let topo = Topology::b4();
    let mut tb = Testbed::new(seed);
    let dpids: Vec<Dpid> = (0..topo.len())
        .map(|i| {
            let dpid = Dpid(i as u64 + 1);
            tb.attach_default(dpid, SwitchProfile::ovs());
            dpid
        })
        .collect();
    (tb, dpids)
}

/// The concrete match for a scenario flow id.
#[must_use]
pub fn match_for_flow(flow_id: u32) -> FlowMatch {
    FlowMatch::l3_for_id(flow_id)
}

/// Lowers a scenario: preinstalls its required rules on the testbed and
/// builds the request DAG. `dpids[node]` maps topology nodes to
/// switches.
pub fn lower_scenario(tb: &mut Testbed, dpids: &[Dpid], scen: &Scenario) -> RequestDag {
    // Preinstall targets for mods/deletes, grouped per switch for batch
    // efficiency.
    let mut per_switch: std::collections::BTreeMap<Dpid, Vec<FlowMod>> =
        std::collections::BTreeMap::new();
    for &(node, flow, prio) in &scen.preinstall {
        per_switch
            .entry(dpids[node])
            .or_default()
            .push(FlowMod::add(match_for_flow(flow), prio));
    }
    for (dpid, fms) in per_switch {
        let (_, failed, _) = tb.batch(dpid, fms);
        assert_eq!(failed, 0, "preinstall must fit the tables");
    }

    let mut dag = RequestDag::new();
    let ids: Vec<NodeId> = scen
        .requests
        .iter()
        .map(|r| {
            let dpid = dpids[r.node];
            let m = match_for_flow(r.flow_id);
            let elem = match (r.op, r.priority) {
                (ScenOp::Add, Some(p)) => ReqElem::add(dpid, m, p, 1),
                (ScenOp::Add, None) => ReqElem::add(dpid, m, 0, 1).without_priority(),
                (ScenOp::Mod, p) => {
                    // Mods/deletes must name the installed rule's
                    // priority; when the app left it unset, recover it
                    // from the preinstall record.
                    let prio = p.unwrap_or_else(|| preinstalled_priority(scen, r.node, r.flow_id));
                    ReqElem::modify(dpid, m, prio, 2)
                }
                (ScenOp::Del, p) => {
                    let prio = p.unwrap_or_else(|| preinstalled_priority(scen, r.node, r.flow_id));
                    ReqElem::delete(dpid, m, prio)
                }
            };
            dag.add_node(elem)
        })
        .collect();
    for &(before, after) in &scen.deps {
        dag.add_dep(ids[before], ids[after]);
    }
    dag
}

fn preinstalled_priority(scen: &Scenario, node: usize, flow: u32) -> u16 {
    scen.preinstall
        .iter()
        .find(|&&(n, f, _)| n == node && f == flow)
        .map(|&(_, _, p)| p)
        .expect("mod/del target must be preinstalled")
}

/// Fig 11's "priority enforcement": requests submitted without
/// priorities get Tango-chosen ones — the DAG level index — so that
/// requests installable together share one priority (cheapest on
/// shift-sensitive hardware) while dependency order is preserved.
///
/// The enforced range sits *above* any plausibly-resident rule priority
/// (Tango can read the table's current maximum from flow stats), so the
/// new adds never shift existing entries either.
pub fn enforce_dag_priorities(dag: &mut RequestDag) {
    let order = dag.topo_order().expect("acyclic");
    // Level = longest path from any root.
    let mut level = vec![0u16; dag.len()];
    for &id in &order {
        let l = level[id.0];
        for &s in dag.successors(id).to_vec().iter() {
            level[s.0] = level[s.0].max(l + 1);
        }
    }
    for id in order {
        if dag.node(id).priority.is_none() {
            dag.node_mut(id).priority = Some(50_000 + level[id.0]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::scenarios::{link_failure, traffic_engineering};
    use workloads::topology::Topology;

    #[test]
    fn lf_lowering_preinstalls_and_builds_dag() {
        let (mut tb, dpids) = triangle_testbed(1);
        let scen = link_failure(&Topology::triangle(), (0, 1), 50, 2);
        let dag = lower_scenario(&mut tb, &dpids, &scen);
        assert_eq!(dag.len(), 100); // 50 adds + 50 mods
        assert!(dag.validate_acyclic());
        // The mod targets exist on s2 (footnote 3's shape).
        assert_eq!(tb.switch(dpids[1]).rule_count(), 50);
    }

    #[test]
    fn enforcement_fills_unset_priorities_by_level() {
        let topo = Topology::triangle();
        let scen = traffic_engineering(&topo, "TE", 40, (1, 0, 0), 2, true, 5);
        let (mut tb, dpids) = triangle_testbed(3);
        let mut dag = lower_scenario(&mut tb, &dpids, &scen);
        enforce_dag_priorities(&mut dag);
        let mut prios = std::collections::BTreeSet::new();
        for id in dag.node_ids() {
            let p = dag.node(id).priority.expect("enforced");
            prios.insert(p);
        }
        // Two DAG levels → exactly two distinct priorities.
        assert_eq!(prios.len(), 2);
        // Dependencies get increasing priorities (install earlier =
        // lower level = lower priority value = ascending-friendly).
        for id in dag.node_ids() {
            for &s in dag.successors(id) {
                assert!(dag.node(s).priority.unwrap() > dag.node(id).priority.unwrap());
            }
        }
    }

    #[test]
    fn b4_testbed_has_twelve_switches() {
        let (tb, dpids) = b4_testbed(7);
        assert_eq!(dpids.len(), 12);
        assert_eq!(tb.dpids().len(), 12);
    }
}
