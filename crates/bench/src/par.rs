//! Deterministic fan-out for grid-shaped experiments.
//!
//! Every experiment grid in this crate — vendors × seeds × sizes — builds
//! an independent `Testbed`/`Simulator` per cell with a cell-derived
//! seed, so cells share no mutable state and can run on any core. This
//! module provides the one primitive they need: [`par_map`], a scoped
//! thread pool (hand-rolled over [`std::thread::scope`]; the workspace
//! has no crates.io access, so rayon is not an option) that applies a
//! function to every item and collects results **by input index**. The
//! output is therefore bit-identical to the sequential `map`, whatever
//! the worker count or OS scheduling order.
//!
//! The worker count comes from, in order of precedence: an explicit
//! [`set_threads`] call (the `--threads N` flag of the `experiments`
//! binary), the `TANGO_BENCH_THREADS` environment variable, and finally
//! [`std::thread::available_parallelism`]. `1` disables fan-out
//! entirely (items run inline on the caller's thread).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// 0 = "not set, consult env / available_parallelism".
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for every subsequent [`par_map`] call.
/// `0` resets to the default (env var, then available parallelism).
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::SeqCst);
}

/// The worker count [`par_map`] will use right now.
#[must_use]
pub fn threads() -> usize {
    let explicit = THREADS.load(Ordering::SeqCst);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(v) = std::env::var("TANGO_BENCH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Applies `f` to every item on a pool of scoped worker threads and
/// returns the results in **input order**.
///
/// Determinism contract: `f` must derive all randomness from its item
/// (cell-local seed) and touch no shared mutable state. Under that
/// contract the result vector is bit-identical to
/// `items.into_iter().map(f).collect()` for every worker count.
///
/// Work distribution is a single atomic counter (work stealing over
/// indices); result slots are per-index, so no ordering is imposed on
/// completion — only on collection.
///
/// Panics in `f` propagate: `std::thread::scope` joins every worker
/// before returning, and a panicked worker re-raises on join.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = threads().min(n.max(1));
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("item slot poisoned")
                    .take()
                    .expect("item taken twice");
                let r = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker skipped an index")
        })
        .collect()
}

/// [`par_map`] over an index range — sugar for grids that are cheaper
/// to describe by position than by materialized item.
pub fn par_map_idx<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map((0..n).collect(), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_input_ordered() {
        set_threads(4);
        let out = par_map((0..100u64).collect(), |i| i * i);
        set_threads(0);
        let expect: Vec<u64> = (0..100).map(|i| i * i).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn matches_sequential_for_every_worker_count() {
        let seq: Vec<String> = (0..17).map(|i| format!("cell-{i}")).collect();
        for workers in [1, 2, 3, 8, 32] {
            set_threads(workers);
            let par = par_map((0..17).collect(), |i: i32| format!("cell-{i}"));
            assert_eq!(par, seq, "workers={workers}");
        }
        set_threads(0);
    }

    #[test]
    fn empty_and_singleton() {
        set_threads(4);
        let empty: Vec<u8> = par_map(Vec::<u8>::new(), |x| x);
        assert!(empty.is_empty());
        assert_eq!(par_map(vec![7u8], |x| x + 1), vec![8]);
        set_threads(0);
    }

    #[test]
    fn index_sugar() {
        set_threads(2);
        assert_eq!(par_map_idx(4, |i| i * 10), vec![0, 10, 20, 30]);
        set_threads(0);
    }
}
