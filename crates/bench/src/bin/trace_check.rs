//! Validates Chrome trace-event JSON files written by the experiments
//! runner's `--trace` flag. CI's determinism job runs this over every
//! emitted trace before diffing them across thread counts.
//!
//! ```text
//! cargo run --release -p bench --bin trace_check -- /tmp/trace/TRACE_fig11.json
//! ```
//!
//! Exits 0 when every file passes, 1 on the first class of violation,
//! 2 on usage errors.

use bench::tracecheck::check;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace_check <trace.json>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                failed = true;
                continue;
            }
        };
        match check(&text) {
            Ok(stats) => println!(
                "{path}: ok — {} events ({} spans) across {} processes / {} span tracks",
                stats.events, stats.complete_events, stats.processes, stats.span_tracks
            ),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
