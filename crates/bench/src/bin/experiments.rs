//! The experiments runner: regenerates every table and figure of the
//! paper, writing CSV/text under `results/`.
//!
//! ```text
//! cargo run --release -p bench --bin experiments -- all
//! cargo run --release -p bench --bin experiments -- fig3c infer_size
//! cargo run --release -p bench --bin experiments -- --quick all
//! cargo run --release -p bench --bin experiments -- --threads 4 all
//! ```
//!
//! `--quick` shrinks workload sizes ~10× for smoke runs. `--threads N`
//! sets the worker count of the deterministic `bench::par` pool (also
//! settable via `TANGO_BENCH_THREADS`; default = available cores);
//! results are bit-identical for every N. Wall-clock per experiment is
//! recorded to `BENCH_experiments.json` next to `results/` — outside it,
//! so timing noise never pollutes the determinism-diffed artifacts.
//!
//! `--trace <dir>` enables virtual-time telemetry on the experiments
//! that support it (fig11, sched_sweep) and writes, per experiment, a
//! Perfetto-loadable Chrome trace (`TRACE_<name>.json`) and a plain-text
//! metrics report (`METRICS_<name>.txt`) into `<dir>` — never inside
//! `results/`, whose artifacts stay byte-identical with and without the
//! flag. Traces are stamped in virtual time, so they too diff
//! byte-identical across thread counts; metric counters additionally
//! land in `BENCH_experiments.json` per experiment.

use bench::experiments::*;
use bench::report::{results_dir, write_figure, write_text};
use simnet::telemetry::MetricsSnapshot;
use std::path::{Path, PathBuf};
use tango::json::Value;

/// One timing record destined for `BENCH_experiments.json`: wall-clock
/// always, simulator event counts when attributable (top-level
/// experiments run serially in this loop, so the process-wide
/// [`simnet::sim::events_processed`] delta is theirs; per-scheduler
/// sub-timings of a parallel sweep carry no event split), telemetry
/// metrics when the experiment ran traced.
struct Timing {
    name: String,
    secs: f64,
    events: Option<u64>,
    metrics: Option<MetricsSnapshot>,
}

/// Writes one experiment's trace + metrics pair under the `--trace`
/// directory and echoes the paths.
fn write_trace(dir: &Path, name: &str, trace_json: &str, metrics_text: &str) {
    std::fs::create_dir_all(dir).expect("create trace dir");
    let trace_path = dir.join(format!("TRACE_{name}.json"));
    std::fs::write(&trace_path, trace_json).expect("write trace json");
    let metrics_path = dir.join(format!("METRICS_{name}.txt"));
    std::fs::write(&metrics_path, metrics_text).expect("write metrics text");
    println!("trace -> {}", trace_path.display());
    println!("metrics -> {}", metrics_path.display());
}

struct Scale {
    quick: bool,
}

impl Scale {
    fn n(&self, full: usize) -> usize {
        if self.quick {
            (full / 10).max(20)
        } else {
            full
        }
    }
}

fn run_one(
    name: &str,
    scale: &Scale,
    trace_dir: Option<&Path>,
    extra_timings: &mut Vec<(String, f64)>,
    metrics_out: &mut Option<MetricsSnapshot>,
) -> bool {
    let q = scale;
    match name {
        "table1" => {
            let rows = table1::run(q.n(8192));
            let text = table1::render(&rows);
            println!("== Table 1 ==\n{text}");
            write_text("table1", &text);
        }
        "fig2" => {
            // Each sub-figure drives one long-lived testbed, so the
            // fan-out happens here, across the three sub-figures.
            let figs = bench::par::par_map_idx(3, |i| match i {
                0 => fig2::fig2a(q.n(80).min(80), q.n(160).min(160)),
                1 => fig2::fig2b(q.n(3500), q.n(5500)),
                _ => fig2::fig2c(q.n(500), q.n(5500)),
            });
            for (n, f) in ["fig2a", "fig2b", "fig2c"].iter().zip(&figs) {
                println!("{n}: {} series written", f.series.len());
                write_figure(n, f);
            }
        }
        "fig3a" => {
            let fig = fig3a::run(q.n(1000), q.n(200), if q.quick { 3 } else { 10 });
            println!("== Fig 3a ==");
            for s in &fig.series {
                println!("  {:<12} {:.2} s", s.label, s.points[0].1);
            }
            write_figure("fig3a", &fig);
        }
        "fig3b" => {
            let sizes: Vec<usize> = fig3b::paper_sizes().into_iter().map(|n| q.n(n)).collect();
            let fig = fig3b::run(&sizes);
            println!("fig3b: {} series written", fig.series.len());
            write_figure("fig3b", &fig);
        }
        "fig3c" => {
            let sizes: Vec<usize> = fig3c::paper_sizes().into_iter().map(|n| q.n(n)).collect();
            let fig = fig3c::run(&sizes);
            println!("fig3c: {} series written", fig.series.len());
            write_figure("fig3c", &fig);
        }
        "fig5" => {
            let fig = fig5::run(q.n(100) as u64, q.n(400) as u64, q.n(2500));
            println!(
                "fig5: layer populations {:?}",
                fig.series.iter().map(|s| s.len()).collect::<Vec<_>>()
            );
            write_figure("fig5", &fig);
        }
        "fig6" => {
            let fig = fig6::run(100);
            println!("fig6: {} series written", fig.series.len());
            write_figure("fig6", &fig);
        }
        "table2" => {
            let rows = table2::run();
            let text = table2::render(&rows);
            println!("== Table 2 ==\n{text}");
            write_text("table2", &text);
        }
        "fig8" | "fig9" => {
            let target = if name == "fig8" {
                fig89::Target::Ovs
            } else {
                fig89::Target::Switch1
            };
            let reps = if q.quick { 3 } else { 10 };
            for (file, cfg) in workloads::classbench::ClassBenchConfig::presets() {
                let fig = fig89::run(target, file, &cfg, reps);
                let out = format!("{name}_{}", file.to_lowercase());
                println!("== {out} ==");
                for s in &fig.series {
                    println!("  {:<10} mean {:.3} s", s.label, s.summary().mean);
                }
                write_figure(&out, &fig);
            }
        }
        "fig10" => {
            let fig = fig10::run(q.n(400), q.n(800));
            println!("== Fig 10 ==");
            for s in &fig.series {
                let ys: Vec<String> = s.points.iter().map(|p| format!("{:.2}", p.1)).collect();
                println!("  {:<22} LF/TE1/TE2 = {}", s.label, ys.join(" / "));
            }
            write_figure("fig10", &fig);
        }
        "fig11" => {
            // Traced or not, the figure bytes are identical — telemetry
            // observes virtual time, it never advances it.
            let fig = if let Some(dir) = trace_dir {
                let (fig, trace_json, metrics) = fig11::run_traced(q.n(2400));
                write_trace(dir, "fig11", &trace_json, &metrics.render_text());
                *metrics_out = Some(metrics);
                fig
            } else {
                fig11::run(q.n(2400))
            };
            println!("== Fig 11 ==");
            for s in &fig.series {
                let ys: Vec<String> = s.points.iter().map(|p| format!("{:.2}", p.1)).collect();
                println!("  {:<28} {}", s.label, ys.join(" / "));
            }
            write_figure("fig11", &fig);
        }
        "fig12" => {
            let fig = fig12::run(q.n(2200));
            println!("== Fig 12 ==");
            for s in &fig.series {
                println!("  {:<10} {:.4} s", s.label, s.points[0].1);
            }
            write_figure("fig12", &fig);
        }
        "infer_size" => {
            let mut rows = infer_size::run(&[256, 512, 1024].map(|n| q.n(n) as u64));
            if !q.quick {
                rows.extend(infer_size::run_vendors());
            }
            let text = infer_size::render(&rows);
            println!("== Size inference accuracy ==\n{text}");
            write_text("infer_size", &text);
        }
        "infer_geometry" => {
            let rows = infer_geometry::run(q.n(6000));
            let text = infer_geometry::render(&rows);
            println!("== TCAM geometry inference ==\n{text}");
            write_text("infer_geometry", &text);
        }
        "infer_policy" => {
            let rows = infer_policy::run(q.n(100) as u64);
            let text = infer_policy::render(&rows);
            println!("== Policy inference ==\n{text}");
            write_text("infer_policy", &text);
        }
        "fleet" => {
            let rows = fleet::run(&[1, 2, 4, 8], q.n(256) as u64);
            let text = fleet::render(&rows);
            println!("== Fleet inference scaling ==\n{text}");
            write_text("fleet", &text);
            let db = fleet::knowledge_db(q.n(256) as u64);
            let path = results_dir().join("fleet_db.json");
            db.save_json(&path).expect("save fleet knowledge db");
            println!("fleet knowledge db -> {}", path.display());
        }
        "ablations" => {
            let mut text = String::new();
            text.push_str("== clustering method ==\n");
            text.push_str(&ablations::clustering_ablation(q.n(512) as u64));
            text.push_str("\n== trials-per-level sweep ==\n");
            text.push_str(&ablations::trials_sweep(
                q.n(512) as u64,
                &[50, 150, 400, 800],
            ));
            let (g, l) = ablations::batching_ablation(q.n(200));
            text.push_str(&format!(
                "\n== batching ==\ngreedy: {g:.3} s, lookahead: {l:.3} s\n"
            ));
            let (a, gu) = ablations::guard_ablation(q.n(200), 50);
            text.push_str(&format!(
                "\n== guard time ==\nack-wait: {a:.3} s, guarded: {gu:.3} s\n"
            ));
            println!("{text}");
            write_text("ablations", &text);
        }
        "sched_sweep" => {
            // The 100k-op scheduler-portfolio sweep. Makespans (the
            // ordering-quality signal) land in `results/sched_sweep.txt`
            // — deterministic, thread-count independent — while each
            // scheduler's host wall-clock rides along into
            // `BENCH_experiments.json` via `extra_timings`.
            let rows = if let Some(dir) = trace_dir {
                let (rows, trace_json, metrics) = sched_sweep::run_traced(q.n(100_000));
                write_trace(dir, "sched_sweep", &trace_json, &metrics.render_text());
                *metrics_out = Some(metrics);
                rows
            } else {
                sched_sweep::run(q.n(100_000))
            };
            let text = sched_sweep::render(&rows);
            println!("== Scheduler sweep ==\n{text}");
            write_text("sched_sweep", &text);
            for r in &rows {
                extra_timings.push((format!("sched_sweep/{}", r.scheduler), r.wall_secs));
            }
        }
        "wire_bench" => {
            // Real-transport numbers are wall-clock, so this arm writes
            // nothing under `results/` (not in ALL, not determinism-
            // diffed); its artifact is `BENCH_wire.json` next to it.
            let total = if q.quick { 40_000 } else { 400_000 };
            let results = wire_bench::run(total, q.quick);
            let text = wire_bench::render(&results);
            println!("== Wire bench (loopback TCP) ==\n{text}");
            let dir = results_dir();
            let path = dir
                .parent()
                .map_or_else(|| dir.clone(), Path::to_path_buf)
                .join("BENCH_wire.json");
            std::fs::write(&path, wire_bench::to_json(&results, q.quick).render())
                .expect("write BENCH_wire.json");
            println!("wire bench -> {}", path.display());
        }
        other => {
            eprintln!("unknown experiment: {other}");
            return false;
        }
    }
    true
}

const ALL: &[&str] = &[
    "table1",
    "fig2",
    "fig3a",
    "fig3b",
    "fig3c",
    "fig5",
    "fig6",
    "table2",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "infer_size",
    "infer_geometry",
    "infer_policy",
    "fleet",
    "ablations",
    "sched_sweep",
];

/// Writes per-experiment wall-clock timings — and, where attributable,
/// simulator event counts with derived events/sec — as machine-readable
/// JSON.
///
/// The file lands *next to* `results/`, not inside it: timings vary run
/// to run, while everything under `results/` must diff byte-identical
/// across thread counts.
fn write_bench_json(timings: &[Timing], threads: usize, quick: bool, total_s: f64) {
    let experiments: Vec<Value> = timings
        .iter()
        .map(|t| {
            let mut fields = vec![
                ("name".into(), Value::Str(t.name.clone())),
                ("secs".into(), Value::num(t.secs)),
            ];
            if let Some(events) = t.events {
                fields.push(("events".into(), Value::num(events as f64)));
                let rate = if t.secs > 0.0 {
                    events as f64 / t.secs
                } else {
                    0.0
                };
                fields.push(("events_per_sec".into(), Value::num(rate)));
            }
            if let Some(m) = &t.metrics {
                fields.push(("metrics".into(), metrics_value(m)));
            }
            Value::Obj(fields)
        })
        .collect();
    let doc = Value::Obj(vec![
        ("threads".into(), Value::num(threads as f64)),
        ("quick".into(), Value::Bool(quick)),
        ("total_secs".into(), Value::num(total_s)),
        ("experiments".into(), Value::Arr(experiments)),
    ]);
    let dir = results_dir();
    let path = dir
        .parent()
        .map_or_else(|| dir.clone(), std::path::Path::to_path_buf)
        .join("BENCH_experiments.json");
    std::fs::write(&path, doc.render()).expect("write BENCH_experiments.json");
    println!("\nperf baseline -> {}", path.display());
}

/// The telemetry metrics block of one traced experiment, as JSON:
/// counters and gauges as name → integer objects, histograms summarized.
fn metrics_value(m: &MetricsSnapshot) -> Value {
    let ints = |pairs: &[(String, u64)]| {
        Value::Obj(
            pairs
                .iter()
                .map(|(k, v)| (k.clone(), Value::num(*v as f64)))
                .collect(),
        )
    };
    let hists = Value::Obj(
        m.hists
            .iter()
            .map(|(k, s)| {
                (
                    k.clone(),
                    Value::Obj(vec![
                        ("n".into(), Value::num(s.n as f64)),
                        ("mean".into(), Value::num(s.mean)),
                        ("p50".into(), Value::num(s.p50)),
                        ("p90".into(), Value::num(s.p90)),
                        ("p99".into(), Value::num(s.p99)),
                        ("max".into(), Value::num(s.max)),
                    ]),
                )
            })
            .collect(),
    );
    Value::Obj(vec![
        ("counters".into(), ints(&m.counters)),
        ("gauges".into(), ints(&m.gauges)),
        ("histograms".into(), hists),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = Scale { quick };
    // `--threads N` (or `--threads=N`) pins the worker pool, and
    // `--trace DIR` (or `--trace=DIR`) turns on telemetry export; both
    // value tokens must not be mistaken for an experiment.
    let mut wanted: Vec<&str> = Vec::new();
    let mut trace_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a == "--threads" {
            let n = args
                .get(i + 1)
                .and_then(|v| v.parse::<usize>().ok())
                .expect("--threads needs a positive integer");
            bench::par::set_threads(n);
            i += 2;
            continue;
        }
        if a == "--trace" {
            let dir = args.get(i + 1).expect("--trace needs a directory");
            trace_dir = Some(PathBuf::from(dir));
            i += 2;
            continue;
        }
        if let Some(v) = a.strip_prefix("--threads=") {
            let n = v
                .parse::<usize>()
                .expect("--threads needs a positive integer");
            bench::par::set_threads(n);
        } else if let Some(v) = a.strip_prefix("--trace=") {
            trace_dir = Some(PathBuf::from(v));
        } else if !a.starts_with("--") {
            wanted.push(a);
        }
        i += 1;
    }
    let list: Vec<&str> = if wanted.is_empty() || wanted.contains(&"all") {
        ALL.to_vec()
    } else {
        wanted
    };
    println!("worker threads: {}", bench::par::threads());
    let suite_t0 = std::time::Instant::now();
    let suite_ev0 = simnet::sim::events_processed();
    let mut timings: Vec<Timing> = Vec::new();
    let mut failed = false;
    for name in list {
        let t0 = std::time::Instant::now();
        let ev0 = simnet::sim::events_processed();
        println!("\n──── running {name} ────");
        let mut extra_timings = Vec::new();
        let mut metrics = None;
        if !run_one(
            name,
            &scale,
            trace_dir.as_deref(),
            &mut extra_timings,
            &mut metrics,
        ) {
            failed = true;
        }
        let secs = t0.elapsed().as_secs_f64();
        let events = simnet::sim::events_processed() - ev0;
        println!("({name} took {secs:.1}s, {events} events)");
        timings.push(Timing {
            name: name.to_string(),
            secs,
            events: Some(events),
            metrics,
        });
        timings.extend(extra_timings.into_iter().map(|(name, secs)| Timing {
            name,
            secs,
            events: None,
            metrics: None,
        }));
    }
    let total_s = suite_t0.elapsed().as_secs_f64();
    print_summary(
        &timings,
        simnet::sim::events_processed() - suite_ev0,
        total_s,
    );
    write_bench_json(&timings, bench::par::threads(), quick, total_s);
    if failed {
        std::process::exit(1);
    }
}

/// The trio whose wall-clock gates perf regressions in CI — its event
/// rate is the suite's headline DES-throughput number.
const TRIO: &[&str] = &["fig11", "fig12", "infer_size"];

/// Prints the end-of-suite summary (captured into `full_run.log`):
/// event totals and events/sec for the whole suite and for the
/// fig11/fig12/infer_size trio.
fn print_summary(timings: &[Timing], suite_events: u64, total_s: f64) {
    let (mut trio_secs, mut trio_events) = (0.0f64, 0u64);
    for t in timings {
        if TRIO.contains(&t.name.as_str()) {
            trio_secs += t.secs;
            trio_events += t.events.unwrap_or(0);
        }
    }
    let rate = |events: u64, secs: f64| {
        if secs > 0.0 {
            events as f64 / secs
        } else {
            0.0
        }
    };
    println!("\n──── suite summary ────");
    if trio_events > 0 {
        println!(
            "trio (fig11+fig12+infer_size): {trio_events} events in {trio_secs:.3}s \
             ({:.0} events/sec)",
            rate(trio_events, trio_secs)
        );
    }
    println!(
        "suite: {suite_events} events in {total_s:.1}s ({:.0} events/sec)",
        rate(suite_events, total_s)
    );
}
