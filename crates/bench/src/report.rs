//! Result output: CSV figures and aligned text tables under `results/`.

use simnet::trace::Figure;
use std::fs;
use std::path::PathBuf;

/// The repository `results/` directory (created on demand).
///
/// Overridable with `TANGO_RESULTS_DIR`, so determinism checks can run
/// the same experiments into two separate directories and diff them.
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = match std::env::var_os("TANGO_RESULTS_DIR") {
        Some(d) if !d.is_empty() => PathBuf::from(d),
        _ => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
            .join("results"),
    };
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a figure as `results/<name>.csv` and returns the path.
pub fn write_figure(name: &str, fig: &Figure) -> PathBuf {
    let path = results_dir().join(format!("{name}.csv"));
    fs::write(&path, fig.to_csv()).expect("write figure");
    path
}

/// Writes a text report as `results/<name>.txt` and returns the path.
pub fn write_text(name: &str, text: &str) -> PathBuf {
    let path = results_dir().join(format!("{name}.txt"));
    fs::write(&path, text).expect("write text");
    path
}

/// Formats rows as an aligned text table with a header row.
#[must_use]
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|h| (*h).to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = format_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        // Columns align: "value"/"1"/"22" start at the same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(lines[2].chars().nth(col), Some('1'));
        assert_eq!(lines[3].chars().nth(col), Some('2'));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = format_table(&["a", "b"], &[vec!["only-one".into()]]);
    }
}
