//! # bench — the experiment harness
//!
//! One module per table/figure of the paper (see `DESIGN.md` §6 for the
//! index). Every experiment is a pure deterministic function returning
//! either a [`simnet::trace::Figure`] (for plots) or a formatted text
//! table; the `experiments` binary runs them and writes CSV/text under
//! `results/`. Criterion benches in `benches/` wrap the same functions
//! at reduced sizes.

pub mod experiments;
pub mod lower;
pub mod par;
pub mod report;
pub mod tracecheck;

pub use lower::{
    attach_triangle, b4_testbed, enforce_dag_priorities, lower_scenario, triangle_testbed,
};
pub use report::{format_table, write_figure, write_text};
