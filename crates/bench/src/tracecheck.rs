//! Structural validation of exported Chrome trace-event JSON.
//!
//! CI runs the `trace_check` binary over the traces the `--trace` flag
//! of the experiments runner writes; [`check`] is the library entry the
//! integration tests share. The rules encode what Perfetto and
//! `chrome://tracing` require to load a file: a `traceEvents` array of
//! well-formed `"M"`/`"X"` events, and — because
//! [`simnet::telemetry::ChromeTrace`] sorts spans by `(track, start)` —
//! non-decreasing `ts` within every `(pid, tid)` track.

use std::collections::BTreeMap;
use tango::json::Value;

/// What a valid trace contained — callers assert on these counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events of any phase.
    pub events: usize,
    /// `"X"` (complete) span events.
    pub complete_events: usize,
    /// Distinct `pid`s (one per experiment cell).
    pub processes: usize,
    /// Distinct `(pid, tid)` pairs carrying at least one span.
    pub span_tracks: usize,
}

fn field<'v>(event: &'v Value, key: &str, i: usize) -> Result<&'v Value, String> {
    event
        .get(key)
        .ok_or_else(|| format!("event {i}: missing \"{key}\""))
}

fn num_field(event: &Value, key: &str, i: usize) -> Result<f64, String> {
    field(event, key, i)?
        .as_f64()
        .ok_or_else(|| format!("event {i}: \"{key}\" is not a number"))
}

fn str_field<'v>(event: &'v Value, key: &str, i: usize) -> Result<&'v str, String> {
    match field(event, key, i)? {
        Value::Str(s) => Ok(s),
        _ => Err(format!("event {i}: \"{key}\" is not a string")),
    }
}

/// Validates `text` as a Perfetto-loadable Chrome trace; returns what it
/// contained, or the first structural violation.
///
/// # Errors
/// A human-readable description of the first malformed construct: parse
/// failure, wrong top-level shape, an ill-typed event field, a negative
/// timestamp/duration, or a `ts` regression within one `(pid, tid)`.
pub fn check(text: &str) -> Result<TraceStats, String> {
    let doc = Value::parse(text).map_err(|e| format!("not valid JSON: {e:?}"))?;
    match doc.get("displayTimeUnit") {
        Some(Value::Str(_)) => {}
        Some(_) => return Err("\"displayTimeUnit\" is not a string".into()),
        None => return Err("missing \"displayTimeUnit\"".into()),
    }
    let events = match doc.get("traceEvents") {
        Some(Value::Arr(events)) => events,
        Some(_) => return Err("\"traceEvents\" is not an array".into()),
        None => return Err("missing \"traceEvents\"".into()),
    };
    if events.is_empty() {
        return Err("\"traceEvents\" is empty".into());
    }
    let mut stats = TraceStats {
        events: events.len(),
        ..TraceStats::default()
    };
    let mut pids: Vec<u64> = Vec::new();
    // Last ts seen per (pid, tid): the exporter sorts spans by
    // (track, start), so emission order must be time order per track.
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        if !matches!(event, Value::Obj(_)) {
            return Err(format!("event {i}: not an object"));
        }
        let ph = str_field(event, "ph", i)?;
        str_field(event, "name", i)?;
        let pid = num_field(event, "pid", i)?;
        if pid < 1.0 || pid.fract() != 0.0 {
            return Err(format!("event {i}: pid {pid} is not a positive integer"));
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let pid = pid as u64;
        if !pids.contains(&pid) {
            pids.push(pid);
        }
        match ph {
            "M" => {
                field(event, "args", i)?;
            }
            "X" => {
                stats.complete_events += 1;
                let ts = num_field(event, "ts", i)?;
                let dur = num_field(event, "dur", i)?;
                let tid = num_field(event, "tid", i)?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i}: negative ts/dur"));
                }
                if tid < 0.0 || tid.fract() != 0.0 {
                    return Err(format!("event {i}: tid {tid} is not an unsigned integer"));
                }
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let track = (pid, tid as u64);
                if let Some(&prev) = last_ts.get(&track) {
                    if ts < prev {
                        return Err(format!(
                            "event {i}: ts {ts} regresses below {prev} on pid {} tid {}",
                            track.0, track.1
                        ));
                    }
                }
                last_ts.insert(track, ts);
            }
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }
    if stats.complete_events == 0 {
        return Err("trace has no \"X\" span events".into());
    }
    stats.processes = pids.len();
    stats.span_tracks = last_ts.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::telemetry::{switch_track, ChromeTrace, Telemetry, TRACK_SCHEDULER};
    use simnet::time::SimTime;

    fn sample_trace() -> String {
        let mut tel = Telemetry::recording();
        let a = tel.span_begin(TRACK_SCHEDULER, "execute", SimTime(0));
        let b = tel.span_begin(switch_track(0), "flow_mod", SimTime(10));
        tel.span_end(b, SimTime(20));
        tel.span_end(a, SimTime(30));
        let rec = tel.take().unwrap();
        let mut ct = ChromeTrace::new();
        ct.add_cell("cell a", &rec);
        ct.add_cell("cell b", &rec);
        ct.render()
    }

    #[test]
    fn accepts_the_exporters_output() {
        let stats = check(&sample_trace()).expect("exporter output is valid");
        assert_eq!(stats.processes, 2);
        assert_eq!(stats.complete_events, 4);
        assert_eq!(stats.span_tracks, 4);
    }

    #[test]
    fn rejects_structural_violations() {
        assert!(check("not json").is_err());
        assert!(check("{}").is_err());
        assert!(check(r#"{"displayTimeUnit":"ms","traceEvents":[]}"#).is_err());
        // Metadata-only: no spans.
        let meta_only = r#"{"displayTimeUnit":"ms","traceEvents":[
            {"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"x"}}
        ]}"#;
        assert!(check(meta_only).unwrap_err().contains("no \"X\""));
        // A ts regression within one track.
        let regress = r#"{"displayTimeUnit":"ms","traceEvents":[
            {"name":"a","ph":"X","ts":5.0,"dur":1.0,"pid":1,"tid":0},
            {"name":"b","ph":"X","ts":4.0,"dur":1.0,"pid":1,"tid":0}
        ]}"#;
        assert!(check(regress).unwrap_err().contains("regresses"));
        // The same ts on another track is fine.
        let other_track = r#"{"displayTimeUnit":"ms","traceEvents":[
            {"name":"a","ph":"X","ts":5.0,"dur":1.0,"pid":1,"tid":0},
            {"name":"b","ph":"X","ts":4.0,"dur":1.0,"pid":1,"tid":1}
        ]}"#;
        assert!(check(other_track).is_ok());
    }
}
