//! The paper's §1 motivating examples, reproduced as executable tests:
//! identical OpenFlow command sequences produce observably different
//! outcomes on switches that differ only in implementation details.

use ofwire::flow_match::FlowMatch;
use ofwire::flow_mod::FlowMod;
use ofwire::types::Dpid;
use simnet::time::SimTime;
use switchsim::cache::CachePolicy;
use switchsim::harness::{OpResult, Testbed};
use switchsim::pipeline::Hit;
use switchsim::pipeline::Pipeline;
use switchsim::profiles::SwitchProfile;
use switchsim::switch::Switch;
use switchsim::tcam::TcamGeometry;

/// "Consider two switches with the same TCAM size, but one adds a
/// software flow table on top. Then, insertion of the same sequence of
/// rules may result in a rejection in one switch (TCAM full), but
/// unexpected low throughput in the other (ended up in the software
/// flow table)."
#[test]
fn same_rules_rejection_vs_slow_path() {
    let tcam = 100u64;
    let mut tb = Testbed::new(1);
    let tcam_only = Dpid(1);
    let with_software = Dpid(2);
    tb.attach_default(tcam_only, {
        let mut p = SwitchProfile::vendor2();
        p.pipeline = Pipeline::tcam_only(TcamGeometry::double_wide(tcam));
        p
    });
    tb.attach_default(
        with_software,
        SwitchProfile::generic_cached(tcam, CachePolicy::fifo()),
    );

    // The same sequence of 150 rules to both.
    let mut rejected = [0usize; 2];
    for (si, dpid) in [tcam_only, with_software].into_iter().enumerate() {
        for i in 0..150u32 {
            let (res, _) = tb.flow_mod(dpid, FlowMod::add(FlowMatch::l3_for_id(i), 10));
            if res == OpResult::TableFull {
                rejected[si] += 1;
            }
        }
    }
    // Switch 1: 50 rejections. Switch 2: none — but rule 120 silently
    // went to the slow path.
    assert_eq!(rejected[0], 50);
    assert_eq!(rejected[1], 0);
    let (hit_fast, rtt_fast) = tb.probe(with_software, &FlowMatch::key_for_id(10));
    let (hit_slow, rtt_slow) = tb.probe(with_software, &FlowMatch::key_for_id(120));
    assert!(matches!(hit_fast, Hit::Table { level: 0, .. }));
    assert!(matches!(hit_slow, Hit::Table { level: 1, .. }));
    assert!(
        rtt_slow.as_millis_f64() > 3.0 * rtt_fast.as_millis_f64(),
        "the 'accepted' rule forwards far slower: {rtt_fast} vs {rtt_slow}"
    );
}

/// "Now consider that the two switches have the same TCAM and software
/// flow table sizes, but they introduce different cache replacement
/// algorithms on TCAM: one uses FIFO while the other is traffic
/// dependent. Then, insertion of the same sequence of rules may again
/// produce different configurations of flow tables entries: which rules
/// will be in the TCAM will be switch dependent."
#[test]
fn same_rules_different_tcam_contents() {
    let tcam = 10u64;
    let mk = |policy| Switch::new(SwitchProfile::generic_cached(tcam, policy), Dpid(1), 9);
    let mut fifo = mk(CachePolicy::fifo());
    let mut lfu = mk(CachePolicy::lfu());

    // Identical command + traffic sequence on both: install 20 rules,
    // then send traffic that favours the *last* ten.
    for sw in [&mut fifo, &mut lfu] {
        let mut t = 0u64;
        for i in 0..20u32 {
            t += 1;
            let _ = sw.apply_flow_mod(&FlowMod::add(FlowMatch::l3_for_id(i), 10), SimTime(t));
        }
        for round in 0..5 {
            for i in 10..20u32 {
                t += 1;
                sw.inject(&FlowMatch::key_for_id(i), SimTime(1000 * round + t), 64);
            }
        }
    }

    let in_tcam = |sw: &Switch| -> Vec<bool> {
        (0..20)
            .map(|i| {
                sw.flow_stats(SimTime(99_999))
                    .iter()
                    .find(|e| e.flow_match == FlowMatch::l3_for_id(i))
                    .map(|e| e.table_id == 0)
                    .unwrap()
            })
            .collect()
    };
    let fifo_tcam = in_tcam(&fifo);
    let lfu_tcam = in_tcam(&lfu);
    // FIFO keeps the first ten installed; the traffic-dependent switch
    // ends up caching the trafficked last ten.
    assert!(fifo_tcam[..10].iter().all(|&x| x));
    assert!(fifo_tcam[10..].iter().all(|&x| !x));
    assert!(lfu_tcam[..10].iter().all(|&x| !x));
    assert!(lfu_tcam[10..].iter().all(|&x| x));
    // …and therefore which flows get line-rate forwarding differs, even
    // though the switches received byte-identical command sequences.
    assert_ne!(fifo_tcam, lfu_tcam);
}

/// "Whether a rule is in TCAM, however, can have a significant impact
/// on its throughput, and therefore quality of service": the same flow,
/// same rule, ~6× forwarding-latency difference purely from cache
/// placement.
#[test]
fn cache_placement_controls_qos() {
    let mut tb = Testbed::new(3);
    let dpid = Dpid(1);
    tb.attach_default(dpid, SwitchProfile::generic_cached(1, CachePolicy::fifo()));
    tb.flow_mod(dpid, FlowMod::add(FlowMatch::l3_for_id(1), 10)); // TCAM
    tb.flow_mod(dpid, FlowMod::add(FlowMatch::l3_for_id(2), 10)); // software
    let (_, fast) = tb.probe(dpid, &FlowMatch::key_for_id(1));
    let (_, slow) = tb.probe(dpid, &FlowMatch::key_for_id(2));
    let ratio = slow.as_millis_f64() / fast.as_millis_f64();
    assert!(
        ratio > 3.0,
        "cache placement changes forwarding latency {ratio:.1}×"
    );
}
