//! Cross-crate integration: the wire protocol end to end — a
//! hand-rolled controller speaking raw `ofwire` bytes to a switch agent,
//! exercising handshake, installation, probing, stats, and error paths
//! exactly as a real control channel would.

use ofwire::prelude::*;
use simnet::time::SimTime;
use switchsim::agent::Agent;
use switchsim::pipeline::Hit;
use switchsim::profiles::SwitchProfile;
use switchsim::switch::Switch;

/// A minimal controller that frames outgoing messages and parses
/// replies through a real `Framer`.
struct MiniController {
    agent: Agent,
    rx: Framer,
    next_xid: Xid,
    now: SimTime,
}

impl MiniController {
    fn new(profile: SwitchProfile) -> MiniController {
        MiniController {
            agent: Agent::new(Switch::new(profile, Dpid(7), 99)),
            rx: Framer::new(),
            next_xid: Xid(1),
            now: SimTime::ZERO,
        }
    }

    /// Sends a message; returns the replies (parsed through the wire).
    fn send(&mut self, msg: Message) -> Vec<(Header, Message)> {
        let xid = self.next_xid;
        self.next_xid = xid.next();
        let bytes = msg.to_bytes(xid);
        // Split the frame in half to exercise reassembly on the agent's
        // side too (the agent framer handles partial delivery).
        let mid = bytes.len() / 2;
        let mut outs = self.agent.feed(&bytes[..mid], self.now).unwrap();
        outs.extend(self.agent.feed(&bytes[mid..], self.now).unwrap());
        self.now += simnet::time::SimDuration::from_micros(100);
        let mut replies = Vec::new();
        for o in outs {
            if let Some(reply) = o.reply {
                self.rx.push(&reply.to_bytes(o.xid));
            }
        }
        while let Some(pair) = self.rx.next_message().unwrap() {
            replies.push(pair);
        }
        replies
    }
}

#[test]
fn handshake_and_features() {
    let mut c = MiniController::new(SwitchProfile::vendor1());
    let replies = c.send(Message::Hello);
    assert_eq!(replies[0].1, Message::Hello);
    let replies = c.send(Message::FeaturesRequest);
    match &replies[0].1 {
        Message::FeaturesReply(fr) => {
            assert_eq!(fr.datapath_id, Dpid(7));
            assert_eq!(fr.n_tables, 2);
        }
        other => panic!("expected features reply, got {other:?}"),
    }
    // Replies echo the request xid.
    assert_eq!(replies[0].0.xid, Xid(2));
}

#[test]
fn install_probe_stats_cycle() {
    let mut c = MiniController::new(SwitchProfile::vendor2());
    // Install 10 rules; successes are silent.
    for i in 0..10u32 {
        let replies = c.send(Message::FlowMod(FlowMod::add(FlowMatch::l3_for_id(i), 50)));
        assert!(replies.is_empty(), "successful add must be silent");
    }
    // Barrier.
    let replies = c.send(Message::BarrierRequest);
    assert_eq!(replies[0].1, Message::BarrierReply);
    // Probe one flow: forwarded, no packet_in.
    let frame = RawFrame::build(&FlowMatch::key_for_id(3), 16);
    let replies = c.send(Message::PacketOut(PacketOut::send(frame, PortNo(1))));
    assert!(replies.is_empty());
    // Probe an unknown flow: punted as packet_in.
    let frame = RawFrame::build(&FlowMatch::key_for_id(99), 16);
    let replies = c.send(Message::PacketOut(PacketOut::send(frame, PortNo(1))));
    match &replies[0].1 {
        Message::PacketIn(pi) => {
            assert_eq!(pi.reason, PacketInReason::NoMatch);
            // The punted frame parses back to the original key.
            let key = RawFrame::parse(&pi.data, pi.in_port).unwrap();
            assert_eq!(key.nw_dst, FlowMatch::key_for_id(99).nw_dst);
        }
        other => panic!("expected packet_in, got {other:?}"),
    }
    // Flow stats reflect the traffic.
    let replies = c.send(Message::StatsRequest(StatsRequestBody::all_flows()));
    match &replies[0].1 {
        Message::StatsReply(StatsBody::Flow(entries)) => {
            assert_eq!(entries.len(), 10);
            let probed: u64 = entries.iter().map(|e| e.packet_count).sum();
            assert_eq!(probed, 1, "exactly one matching probe was sent");
        }
        other => panic!("expected flow stats, got {other:?}"),
    }
}

#[test]
fn table_full_error_carries_offending_request() {
    let mut c = MiniController::new(SwitchProfile::vendor3());
    let mut error_seen = false;
    for i in 0..800u32 {
        let fm = FlowMod::add(FlowMatch::l3_for_id(i), 50);
        let replies = c.send(Message::FlowMod(fm));
        if let Some((hdr, Message::Error(e))) = replies.first().map(|r| (r.0, r.1.clone())) {
            assert!(e.is_table_full());
            assert_eq!(i, 767, "vendor3 rejects the 768th L3 rule");
            // The error echoes (a prefix of) the rejected frame, whose
            // header carries the same xid.
            let echoed = Header::peek(&e.data).unwrap();
            assert_eq!(echoed.xid, hdr.xid);
            assert_eq!(echoed.msg_type, MessageType::FlowMod);
            error_seen = true;
            break;
        }
    }
    assert!(error_seen);
}

#[test]
fn echo_measures_control_channel() {
    let mut c = MiniController::new(SwitchProfile::ovs());
    let payload = vec![0xab; 32];
    let replies = c.send(Message::EchoRequest(payload.clone()));
    assert_eq!(replies[0].1, Message::EchoReply(payload));
}

#[test]
fn data_plane_promotion_visible_through_wire() {
    // OVS: first packet slow path (userspace), second fast (kernel) —
    // observable purely through packet_out/agent outputs.
    let mut c = MiniController::new(SwitchProfile::ovs());
    c.send(Message::FlowMod(FlowMod::add(FlowMatch::l3_for_id(1), 5)));
    let hits: Vec<Hit> = (0..2)
        .map(|_| {
            let frame = RawFrame::build(&FlowMatch::key_for_id(1), 16);
            let bytes = Message::PacketOut(PacketOut::send(frame, PortNo(1))).to_bytes(Xid(900));
            let outs = c.agent.feed(&bytes, c.now).unwrap();
            outs[0].forwarded.unwrap().0
        })
        .collect();
    assert_eq!(
        hits[0],
        Hit::Table {
            level: 1,
            entry: switchsim::entry::EntryId(1)
        }
    );
    assert_eq!(
        hits[1],
        Hit::Table {
            level: 0,
            entry: switchsim::entry::EntryId(1)
        }
    );
}
