//! Cross-crate integration: network-wide updates executed end to end —
//! scenarios lowered onto a multi-switch testbed, scheduled by Dionysus
//! and by Tango, with correctness invariants checked on the final switch
//! states.

use bench::lower::{attach_triangle, b4_testbed, lower_scenario};
use ofwire::types::Dpid;
use switchsim::harness::Testbed;
use tango_sched::basic::{run_dionysus, run_tango_online, TangoMode};
use workloads::scenarios::{b4_traffic_engineering, link_failure, traffic_engineering, ScenOp};
use workloads::topology::Topology;

fn triangle(seed: u64) -> (Testbed, Vec<Dpid>) {
    let mut tb = Testbed::new(seed);
    let dpids = attach_triangle(&mut tb);
    (tb, dpids)
}

#[test]
fn all_schedulers_reach_identical_final_rule_counts() {
    let topo = Topology::triangle();
    let scen = traffic_engineering(&topo, "TE", 300, (2, 1, 1), 1, false, 3);
    let (adds, _mods, dels) = scen.op_counts();
    let preinstalled = scen.preinstall.len();

    let mut counts = Vec::new();
    for which in ["dionysus", "type", "full"] {
        let (mut tb, dpids) = triangle(1);
        let mut dag = lower_scenario(&mut tb, &dpids, &scen);
        let report = match which {
            "dionysus" => run_dionysus(&mut tb, &mut dag),
            "type" => run_tango_online(&mut tb, &mut dag, TangoMode::TypeOnly),
            _ => run_tango_online(&mut tb, &mut dag, TangoMode::TypeAndPriority),
        };
        assert_eq!(report.completed, scen.requests.len(), "{which}");
        assert_eq!(report.failed, 0, "{which}");
        let total: usize = dpids
            .iter()
            .map(|&d| tb.switch(d).rule_count())
            .collect::<Vec<_>>()
            .iter()
            .sum();
        counts.push(total);
    }
    assert_eq!(counts[0], counts[1]);
    assert_eq!(counts[1], counts[2]);
    assert_eq!(counts[0], preinstalled + adds - dels);
}

#[test]
fn tango_never_loses_to_dionysus_across_scenarios() {
    let topo = Topology::triangle();
    let scens = vec![
        link_failure(&topo, (0, 1), 150, 0x51),
        traffic_engineering(&topo, "TE", 300, (2, 1, 1), 1, false, 0x52),
        traffic_engineering(&topo, "TE", 300, (1, 1, 1), 2, false, 0x53),
    ];
    for scen in scens {
        let dio = {
            let (mut tb, dpids) = triangle(2);
            let mut dag = lower_scenario(&mut tb, &dpids, &scen);
            run_dionysus(&mut tb, &mut dag).makespan
        };
        let tango = {
            let (mut tb, dpids) = triangle(2);
            let mut dag = lower_scenario(&mut tb, &dpids, &scen);
            run_tango_online(&mut tb, &mut dag, TangoMode::TypeAndPriority).makespan
        };
        assert!(
            tango.as_millis_f64() <= dio.as_millis_f64() * 1.02,
            "{}: tango {tango} vs dionysus {dio}",
            scen.name
        );
    }
}

#[test]
fn lf_update_is_destination_first_on_the_wire() {
    // After the LF scenario, every s1 add must have been applied after
    // its flow's s2 mod. We verify through the virtual clock: run with a
    // one-flow scenario and check switch states mid-flight is not
    // possible post-hoc, so instead verify the DAG lowering produced the
    // dependency and the executor completed everything without failure
    // (the executor asserts blocked nodes are never issued).
    let topo = Topology::triangle();
    let scen = link_failure(&topo, (0, 1), 100, 0x54);
    let (mut tb, dpids) = triangle(3);
    let mut dag = lower_scenario(&mut tb, &dpids, &scen);
    // Destination-side mods are the only initially independent requests.
    for id in dag.independent_set() {
        assert_eq!(dag.node(id).location, dpids[1]);
    }
    let report = run_tango_online(&mut tb, &mut dag, TangoMode::TypeAndPriority);
    assert_eq!(report.failed, 0);
    // s1 carries the 100 new detour routes; the old routes lived in
    // the scenario only as s2 state.
    assert_eq!(tb.switch(dpids[0]).rule_count(), 100);
    assert_eq!(tb.switch(dpids[1]).rule_count(), 100);
}

#[test]
fn b4_scale_update_executes_cleanly() {
    let scen = b4_traffic_engineering(400, 0x55);
    let (mut tb, dpids) = b4_testbed(0x55);
    let mut dag = lower_scenario(&mut tb, &dpids, &scen);
    let n = dag.len();
    let report = run_tango_online(&mut tb, &mut dag, TangoMode::TypeAndPriority);
    assert_eq!(report.completed + report.failed, n);
    assert_eq!(report.failed, 0);
    // Deleted flows are gone: every Del target no longer matches.
    for r in &scen.requests {
        if r.op == ScenOp::Del {
            let key = ofwire::flow_match::FlowMatch::key_for_id(r.flow_id);
            let (hit, _) = tb.probe(dpids[r.node], &key);
            assert_eq!(
                hit,
                switchsim::pipeline::Hit::Miss,
                "deleted flow {} still matches on node {}",
                r.flow_id,
                r.node
            );
        }
    }
}
