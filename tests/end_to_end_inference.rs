//! Cross-crate integration: the complete Tango inference loop — wire
//! protocol → simulated switch → probing engine → algorithms → TangoDB —
//! across the full diversity of switch implementations.

use ofwire::types::Dpid;
use switchsim::cache::CachePolicy;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::prelude::*;

/// One full understand-the-switch pass, as a controller would run it.
fn understand(profile: SwitchProfile, max_flows: usize) -> (TangoDb, Dpid) {
    let mut tb = Testbed::new(0xe2e);
    let dpid = Dpid(1);
    tb.attach_default(dpid, profile);
    let mut db = TangoDb::new();

    let mut engine = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
    let size = probe_sizes(
        &mut engine,
        &SizeProbeConfig {
            max_flows,
            trials_per_level: 300,
            ..SizeProbeConfig::default()
        },
    )
    .expect("size probe completes");
    let fast = size.fast_layer_size().unwrap_or(0.0).round() as usize;
    let policy = probe_policy(&mut engine, fast, &PolicyProbeConfig::default())
        .expect("policy probe completes");
    engine.clear_rules();
    let latency = measure_latency_profile(&mut engine, 200).expect("latency profile completes");

    let k = db.switch_mut(dpid);
    k.size = Some(size);
    k.policy = Some(policy);
    k.latency = Some(latency);
    (db, dpid)
}

#[test]
fn full_loop_on_fifo_switch() {
    let (db, dpid) = understand(SwitchProfile::generic_cached(300, CachePolicy::fifo()), 600);
    let k = db.switch(dpid).unwrap();
    let fast = k.fast_layer_size().unwrap();
    assert!((fast - 300.0).abs() / 300.0 < 0.05, "fast layer {fast}");
    let policy = k.policy.as_ref().unwrap().as_policy().describe();
    assert_eq!(policy, "insertion_time↓");
    assert!(k.latency.unwrap().priority_sensitive());
}

#[test]
fn full_loop_on_lru_switch() {
    let (db, dpid) = understand(SwitchProfile::generic_cached(250, CachePolicy::lru()), 500);
    let k = db.switch(dpid).unwrap();
    let fast = k.fast_layer_size().unwrap();
    assert!((fast - 250.0).abs() / 250.0 < 0.05, "fast layer {fast}");
    assert_eq!(
        k.policy.as_ref().unwrap().as_policy().describe(),
        "use_time↑"
    );
}

#[test]
fn full_loop_on_tcam_only_switch() {
    let (db, dpid) = understand(SwitchProfile::vendor3(), 2048);
    let k = db.switch(dpid).unwrap();
    // Rejection-bounded: the estimate is exact.
    assert_eq!(k.fast_layer_size(), Some(767.0));
}

#[test]
fn knowledge_drives_placement_decisions() {
    // Probe a hardware-like switch and a software-like switch; the
    // hints API must route latency-critical setup to the software one
    // and throughput traffic to the hardware one (the intro scenario).
    let mut tb = Testbed::new(9);
    let hw = Dpid(1);
    let sw = Dpid(2);
    tb.attach_default(hw, SwitchProfile::vendor2());
    tb.attach_default(sw, SwitchProfile::ovs());

    let mut db = TangoDb::new();
    for dpid in [hw, sw] {
        let mut engine = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
        let size = probe_sizes(
            &mut engine,
            &SizeProbeConfig {
                max_flows: 512,
                trials_per_level: 32,
                ..SizeProbeConfig::default()
            },
        )
        .expect("size probe completes");
        engine.clear_rules();
        let latency = measure_latency_profile(&mut engine, 150).expect("latency profile completes");
        let k = db.switch_mut(dpid);
        k.size = Some(size);
        k.latency = Some(latency);
    }

    let fast_setup = advise_placement(&db, &[hw, sw], &AppHint::fast_setup());
    let fast_fwd = advise_placement(&db, &[hw, sw], &AppHint::fast_forwarding());
    assert_eq!(fast_setup, Some(sw), "software switch installs faster");
    assert_eq!(fast_fwd, Some(hw), "hardware forwards faster");
}

#[test]
fn inference_is_deterministic_end_to_end() {
    let run = || {
        let (db, dpid) = understand(
            SwitchProfile::generic_cached(128, CachePolicy::priority_then_lru()),
            256,
        );
        let k = db.switch(dpid).unwrap();
        (
            k.fast_layer_size().unwrap(),
            k.policy.as_ref().unwrap().as_policy().describe(),
        )
    };
    let (s1, p1) = run();
    let (s2, p2) = run();
    assert_eq!(s1, s2);
    assert_eq!(p1, p2);
    assert_eq!(p1, "priority↑,use_time↑");
}
