//! Robustness of the inference algorithms under adverse conditions:
//! elevated data-path jitter and lossy control channels (the situations
//! a production deployment would face, per the smoltcp-style
//! fault-injection convention).

use ofwire::types::Dpid;
use simnet::dist::Dist;
use simnet::link::Link;
use switchsim::cache::CachePolicy;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::prelude::*;
use tango::stats::relative_error;

/// A FIFO-cached switch whose path delays carry `jitter_frac` relative
/// noise instead of the defaults.
fn noisy_profile(tcam: u64, jitter_frac: f64) -> SwitchProfile {
    let mut p = SwitchProfile::generic_cached(tcam, CachePolicy::fifo());
    p.datapath.levels = p
        .datapath
        .levels
        .iter()
        .map(|d| Dist::jittered(d.mean_ms(), jitter_frac))
        .collect();
    p.datapath.controller = Dist::jittered(p.datapath.controller.mean_ms(), jitter_frac);
    p
}

fn size_error(profile: SwitchProfile, ctrl: Link, tcam: u64, seed: u64) -> f64 {
    let mut tb = Testbed::new(seed);
    let dpid = Dpid(1);
    tb.attach(dpid, profile, ctrl);
    let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
    let est = probe_sizes(
        &mut eng,
        &SizeProbeConfig {
            max_flows: (tcam * 2) as usize,
            seed,
            ..SizeProbeConfig::default()
        },
    )
    .expect("size probe completes");
    relative_error(est.fast_layer_size().unwrap_or(0.0), tcam as f64)
}

#[test]
fn size_inference_survives_4x_jitter() {
    // Default fast-path jitter is ~4.5 %; quadruple it. The clusters are
    // still far apart relative to the noise, so accuracy holds.
    let err = size_error(noisy_profile(300, 0.18), Link::control_channel(0.1), 300, 1);
    assert!(err < 0.06, "error {err} under 18% jitter");
}

#[test]
fn size_inference_survives_lossy_control_channel() {
    // 1 % frame loss on the control channel: dropped probe frames are
    // retransmitted after a 5 ms timeout, which lands those RTT samples
    // far outside their true cluster. The runt-merging clusterer and
    // the negative-binomial estimator absorb it.
    let lossy = Link::control_channel(0.1).with_drop_chance(0.01);
    let err = size_error(
        SwitchProfile::generic_cached(300, CachePolicy::fifo()),
        lossy,
        300,
        2,
    );
    assert!(err < 0.08, "error {err} under 1% control loss");
}

#[test]
fn policy_inference_survives_moderate_loss() {
    let lossy = Link::control_channel(0.1).with_drop_chance(0.005);
    let mut tb = Testbed::new(5);
    let dpid = Dpid(1);
    tb.attach(
        dpid,
        SwitchProfile::generic_cached(100, CachePolicy::lru()),
        lossy,
    );
    let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
    let inferred =
        probe_policy(&mut eng, 100, &PolicyProbeConfig::default()).expect("policy probe completes");
    assert_eq!(inferred.as_policy().describe(), "use_time↑");
}

#[test]
fn heavy_loss_degrades_gracefully_not_catastrophically() {
    // At 5 % loss, many samples are displaced by retransmission
    // timeouts. The estimate may drift beyond the headline 5 % but must
    // stay in the right ballpark (no wild or negative output).
    let lossy = Link::control_channel(0.1).with_drop_chance(0.05);
    let err = size_error(
        SwitchProfile::generic_cached(300, CachePolicy::fifo()),
        lossy,
        300,
        3,
    );
    assert!(err < 0.35, "error {err} under 5% control loss");
}

#[test]
fn latency_curves_still_rank_orderings_under_noise() {
    let mut tb = Testbed::new(7);
    let dpid = Dpid(1);
    tb.attach(
        dpid,
        noisy_profile(400, 0.15),
        Link::control_channel(0.1).with_drop_chance(0.002),
    );
    let mut eng = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
    let lp = measure_latency_profile(&mut eng, 300).expect("latency profile completes");
    assert!(lp.priority_sensitive());
    assert!(lp.add_desc_ms > lp.add_rand_ms);
    assert!(lp.add_rand_ms > lp.add_asc_ms);
}
