//! Fleet inference over loopback TCP reproduces the in-memory testbed's
//! knowledge base bit-for-bit.
//!
//! Same master seed, same roster order, same jobs — one run over the
//! in-memory `Testbed`, one over `TcpFleet` against a virtual-time
//! `AgentServer` on real sockets. The persisted `TangoDb` JSON must be
//! byte-identical: every probe outcome, every inferred size, every
//! virtual timestamp the estimates embed survived the trip through
//! OpenFlow framing, TCP segmentation, and the reactor.

use ofwire::types::Dpid;
use simnet::link::Link;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::prelude::*;
use tango_net::control::TcpFleet;
use tango_net::server::{AgentServer, ServerMode};

const SEED: u64 = 0xf1ee7;

fn roster() -> Vec<(Dpid, SwitchProfile)> {
    vec![
        (Dpid(1), SwitchProfile::ovs()),
        (Dpid(2), SwitchProfile::vendor1()),
        (Dpid(3), SwitchProfile::vendor2()),
        (Dpid(4), SwitchProfile::vendor3()),
    ]
}

fn jobs() -> Vec<FleetJob> {
    roster()
        .iter()
        .map(|(dpid, _)| {
            FleetJob::size(
                *dpid,
                RuleKind::L3,
                SizeProbeConfig {
                    max_flows: 3000,
                    seed: 0x5eed ^ dpid.0,
                    ..SizeProbeConfig::default()
                },
            )
        })
        .collect()
}

#[test]
fn tcp_fleet_inference_matches_in_memory_db() {
    let link = Link::control_channel(0.1);
    let jobs = jobs();

    // In-memory baseline: the testbed attaches the roster in order
    // behind the same control-channel model.
    let mut tb = Testbed::new(SEED);
    for (dpid, profile) in roster() {
        tb.attach(dpid, profile, link);
    }
    let baseline = run_inference(&mut tb, &jobs).expect("in-memory inference completes");
    let mut mem_db = TangoDb::new();
    mem_db.ingest_fleet(&jobs, &baseline);

    // The same inference over loopback TCP.
    let server = AgentServer::spawn(SEED, roster(), ServerMode::Virtual { link })
        .expect("loopback server spawns");
    let dpids: Vec<Dpid> = jobs.iter().map(|j| j.dpid).collect();
    let mut fleet = TcpFleet::connect(server.addr(), &dpids).expect("fleet connects");
    let outcomes = run_inference(&mut fleet, &jobs).expect("tcp inference completes");
    drop(fleet);
    let stats = server.shutdown().expect("server exits cleanly");
    assert_eq!(stats.errors, 0, "no protocol violations");
    let mut tcp_db = TangoDb::new();
    tcp_db.ingest_fleet(&jobs, &outcomes);

    // Persist both and compare the bytes on disk — the artifact a
    // controller reloads must not depend on which transport built it.
    let dir = std::env::temp_dir();
    let mem_path = dir.join("tango_equiv_mem.json");
    let tcp_path = dir.join("tango_equiv_tcp.json");
    mem_db.save_json(&mem_path).expect("save in-memory db");
    tcp_db.save_json(&tcp_path).expect("save tcp db");
    let mem_bytes = std::fs::read(&mem_path).expect("read in-memory db");
    let tcp_bytes = std::fs::read(&tcp_path).expect("read tcp db");
    assert_eq!(
        mem_bytes, tcp_bytes,
        "TCP-built knowledge base diverges from the in-memory one"
    );
}
