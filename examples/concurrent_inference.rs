//! Concurrent multi-switch inference: probe several switches in one
//! simulator, interleaved in virtual time.
//!
//! ```sh
//! cargo run --release --example concurrent_inference
//! ```
//!
//! Every switch runs the same Tango pattern. Sequentially the probe
//! times add up; through the event-driven control path the runs
//! overlap, so the wall-clock (virtual) cost is close to the slowest
//! switch alone — while each switch's measurements stay bit-identical
//! to what a sequential run would have produced, because its latency
//! jitter comes from its own RNG stream.

use ofwire::types::Dpid;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::pattern::{PriorityOrder, RuleKind, TangoPattern};
use tango::prelude::*;

fn testbed() -> Testbed {
    let mut tb = Testbed::new(0xda7c);
    tb.attach_default(Dpid(1), SwitchProfile::vendor1());
    tb.attach_default(Dpid(2), SwitchProfile::vendor2());
    tb.attach_default(Dpid(3), SwitchProfile::vendor3());
    tb
}

fn main() {
    let pattern = TangoPattern::priority_insertion(300, PriorityOrder::Ascending, RuleKind::L3);
    let dpids = [Dpid(1), Dpid(2), Dpid(3)];

    // Sequential baseline: one switch after the other.
    let mut seq_tb = testbed();
    let seq_start = seq_tb.now();
    let seq: Vec<PatternResult> = dpids
        .iter()
        .map(|&d| {
            ProbingEngine::new(&mut seq_tb, d, RuleKind::L3)
                .run(&pattern)
                .expect("sequential run completes")
        })
        .collect();
    let seq_elapsed = seq_tb.now().since(seq_start);

    // Concurrent: all three programs interleaved in one simulator.
    let mut con_tb = testbed();
    let con_start = con_tb.now();
    let jobs: Vec<(Dpid, &TangoPattern)> = dpids.iter().map(|&d| (d, &pattern)).collect();
    let con = run_patterns(&mut con_tb, &jobs).expect("concurrent run completes");
    let con_elapsed = con_tb.all_quiet_at().since(con_start);

    println!("switch                   install time   rules");
    println!("---------------------------------------------");
    for (d, r) in dpids.iter().zip(&con) {
        let installed = con_tb.switch(*d).rule_count();
        println!(
            "{d}   {:>12}   {installed:>5}",
            format!("{}", r.install_time())
        );
    }

    let identical = seq == con;
    println!();
    println!("sequential total: {seq_elapsed}");
    println!("concurrent total: {con_elapsed}");
    println!(
        "overlap saving:   {:.0}%",
        100.0 * (1.0 - con_elapsed.as_millis_f64() / seq_elapsed.as_millis_f64())
    );
    println!("measurements identical to sequential: {identical}");
}
