//! Quickstart: probe a simulated hardware switch and print what Tango
//! learns about it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! This walks the full Tango loop on one switch: size inference
//! (Algorithm 1), cache-policy inference (Algorithm 2), and latency-curve
//! measurement — then stores everything in the TangoDB.

use ofwire::types::Dpid;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::prelude::*;

fn main() {
    // A testbed with one black-box switch. Swap in `vendor2()`,
    // `vendor3()`, `ovs()`, or `generic_cached(..)` to see how the same
    // probes adapt to different implementations.
    let mut tb = Testbed::new(42);
    let dpid = Dpid(1);
    tb.attach_default(
        dpid,
        SwitchProfile::generic_cached(512, switchsim::cache::CachePolicy::lru()),
    );

    println!("probing switch {dpid} …\n");

    // --- Algorithm 1: flow-table layer sizes -------------------------
    let mut engine = ProbingEngine::new(&mut tb, dpid, RuleKind::L3);
    let size = probe_sizes(
        &mut engine,
        &SizeProbeConfig {
            max_flows: 1024,
            ..SizeProbeConfig::default()
        },
    )
    .expect("size probe completes");
    println!("layers detected: {}", size.levels.len());
    for (i, l) in size.levels.iter().enumerate() {
        println!(
            "  layer {i}: ~{:.0} rules (RTT cluster at {:.2} ms{})",
            l.estimated_size,
            l.rtt_ms,
            if l.saturated { ", saturated" } else { "" }
        );
    }
    println!(
        "  probing cost: {} rule installs in {} batches, {} packets\n",
        size.rules_attempted, size.batches, size.packets_sent
    );

    // --- Algorithm 2: cache-replacement policy -----------------------
    let fast_layer = size.fast_layer_size().unwrap_or(0.0).round() as usize;
    let policy = probe_policy(&mut engine, fast_layer, &PolicyProbeConfig::default())
        .expect("policy probe completes");
    println!("inferred cache policy: {}", policy.as_policy().describe());
    for (i, round) in policy.rounds.iter().enumerate() {
        let best = round
            .correlations
            .iter()
            .map(|(a, r)| format!("{a}:{r:+.2}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!("  round {i}: correlations [{best}]");
    }

    // --- Latency curves ----------------------------------------------
    let curves = measure_latency_profile(&mut engine, 400).expect("latency profile completes");
    println!("\nper-op latency profile (n = 400):");
    println!("  add (ascending):  {:.3} ms", curves.add_asc_ms);
    println!("  add (descending): {:.3} ms", curves.add_desc_ms);
    println!("  add (random):     {:.3} ms", curves.add_rand_ms);
    println!("  modify:           {:.3} ms", curves.mod_ms);
    println!("  delete:           {:.3} ms", curves.del_ms);
    println!(
        "  fitted shift cost: {:.1} µs/entry ({})",
        curves.shift_us,
        if curves.priority_sensitive() {
            "priority-sensitive: install ascending!"
        } else {
            "priority-insensitive"
        }
    );

    // --- Everything lands in the TangoDB ------------------------------
    let mut db = TangoDb::new();
    let k = db.switch_mut(dpid);
    k.label = "quickstart switch".into();
    k.size = Some(size);
    k.policy = Some(policy);
    k.latency = Some(curves);
    println!(
        "\nTangoDB now knows {} switch(es); fast-layer estimate {:?}",
        db.dpids().len(),
        db.switch(dpid).and_then(|k| k.fast_layer_size())
    );
}
