//! ACL installation with automatic priority assignment — the Fig 8/9
//! workflow as an application would use it:
//!
//! 1. generate (or load) an ACL;
//! 2. extract its rule dependencies;
//! 3. let Tango assign minimal topological priorities;
//! 4. install in the probed-optimal (ascending) order;
//! 5. compare against the naive random-order installation.
//!
//! ```sh
//! cargo run --release --example acl_install
//! ```

use ofwire::flow_mod::FlowMod;
use ofwire::types::Dpid;
use simnet::rng::DetRng;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango_sched::priority::{
    ascending_install_order, r_priorities, satisfies, topological_priorities,
};
use workloads::classbench::{generate, ClassBenchConfig};
use workloads::dependency::rule_dependencies;

fn install(matches: &[ofwire::flow_match::FlowMatch], prios: &[u16], order: &[usize]) -> f64 {
    let mut tb = Testbed::new(0xac1);
    let dpid = Dpid(1);
    tb.attach_default(dpid, SwitchProfile::vendor1());
    let fms: Vec<FlowMod> = order
        .iter()
        .map(|&i| FlowMod::add(matches[i], prios[i]))
        .collect();
    let (ok, failed, elapsed) = tb.batch(dpid, fms);
    assert_eq!(failed, 0);
    assert_eq!(ok, matches.len());
    elapsed.as_secs_f64()
}

fn main() {
    for (name, cfg) in ClassBenchConfig::presets() {
        let rules = generate(&cfg);
        let matches: Vec<_> = rules.iter().map(|r| r.flow_match).collect();
        let deps = rule_dependencies(&matches);
        println!(
            "── {name}: {} rules, {} dependencies ──",
            rules.len(),
            deps.len()
        );

        // Tango's two assignments.
        let topo =
            topological_priorities(matches.len(), &deps).expect("ClassBench ACLs are acyclic");
        let r = r_priorities(matches.len(), &deps).expect("ClassBench ACLs are acyclic");
        assert!(satisfies(&topo.priorities, &deps));
        assert!(satisfies(&r.priorities, &deps));
        println!(
            "  priority levels: topological = {}, 1-to-1 (R) = {}",
            topo.distinct, r.distinct
        );

        // Installation orders: probed-optimal ascending vs naive random.
        let asc = ascending_install_order(&topo.priorities);
        let mut rand_order: Vec<usize> = (0..matches.len()).collect();
        DetRng::new(1).shuffle(&mut rand_order);

        let t_opt = install(&matches, &topo.priorities, &asc);
        let t_rand = install(&matches, &topo.priorities, &rand_order);
        let t_r_rand = install(&matches, &r.priorities, &rand_order);
        println!("  topo priorities, ascending order: {t_opt:.3} s");
        println!("  topo priorities, random order:    {t_rand:.3} s");
        println!("  R priorities,    random order:    {t_r_rand:.3} s");
        println!(
            "  → Tango's assignment + ordering cuts installation by {:.0}%\n",
            (1.0 - t_opt / t_r_rand) * 100.0
        );
    }
}
