//! Black-box switch identification: given a line-up of unlabeled
//! switches, use only Tango probes to figure out which vendor profile
//! each one is.
//!
//! ```sh
//! cargo run --release --example infer_blackbox_switch
//! ```
//!
//! This is the paper's "understanding challenge" in miniature: the
//! probes never look inside a switch; they only send standard OpenFlow
//! commands and data packets, yet recover table sizes, width modes, and
//! caching behaviour that the switches' own feature reports don't carry.

use ofwire::types::Dpid;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::infer_size::SizeEstimate;
use tango::prelude::*;

/// Probes one switch with rules of one kind, then clears it.
fn probe_kind(tb: &mut Testbed, dpid: Dpid, kind: RuleKind, cap: usize) -> SizeEstimate {
    let mut eng = ProbingEngine::new(tb, dpid, kind);
    eng.clear_rules();
    let est = probe_sizes(
        &mut eng,
        &SizeProbeConfig {
            max_flows: cap,
            trials_per_level: 64,
            ..SizeProbeConfig::default()
        },
    )
    .expect("size probe completes");
    eng.clear_rules();
    est
}

/// Classifies a switch from two probes (narrow L3-only rules vs wide
/// L2+L3 rules).
fn classify(narrow: &SizeEstimate, wide: &SizeEstimate) -> String {
    match (narrow.hit_rejection, narrow.levels.len()) {
        (false, 0 | 1) => "software switch: no bounded table, single fast tier → OVS-like".into(),
        (false, _) => {
            let fast = narrow.fast_layer_size().unwrap_or(0.0);
            format!("TCAM (+~{fast:.0} entries) over unbounded software spill → Switch #1-like")
        }
        (true, _) => {
            let n = narrow.m;
            let w = wide.m;
            if n == w {
                format!("TCAM-only, fixed double-wide ({n} entries) → Switch #2-like")
            } else if w * 2 <= n + 2 {
                format!("TCAM-only, adaptive width ({n} narrow / {w} wide) → Switch #3-like")
            } else {
                format!("TCAM-only, width-sensitive ({n}/{w})")
            }
        }
    }
}

fn main() {
    // The line-up, deliberately shuffled and unlabeled.
    let lineup: Vec<(&str, SwitchProfile)> = vec![
        ("mystery A", SwitchProfile::vendor3()),
        ("mystery B", SwitchProfile::ovs()),
        ("mystery C", SwitchProfile::vendor2()),
        ("mystery D", SwitchProfile::vendor1()),
    ];

    let mut tb = Testbed::new(7);
    let dpids: Vec<Dpid> = lineup
        .iter()
        .enumerate()
        .map(|(i, (_, p))| {
            let d = Dpid(i as u64 + 1);
            tb.attach_default(d, p.clone());
            d
        })
        .collect();

    for ((name, truth), &dpid) in lineup.iter().zip(&dpids) {
        println!("── {name} ──");

        // What does the switch *claim*? (Often wrong or vacuous.)
        let reported = tb.switch(dpid).features_reply(4);
        println!("  claims:   {} table(s)", reported.n_tables);

        // What do measurements say?
        // Cap well above the largest plausible TCAM so spill tiers
        // (Switch #1's software table) become clearly populated.
        let narrow = probe_kind(&mut tb, dpid, RuleKind::L3, 6000);
        let wide = probe_kind(&mut tb, dpid, RuleKind::L2L3, 6000);
        println!(
            "  measured: narrow m={} (rejected={}), wide m={}, tiers={}",
            narrow.m,
            narrow.hit_rejection,
            wide.m,
            narrow.levels.len()
        );
        println!("  verdict:  {}", classify(&narrow, &wide));
        println!("  (actually: {})\n", truth.name);
    }
}
