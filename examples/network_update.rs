//! Network-wide update scheduling: run the paper's link-failure and
//! traffic-engineering scenarios on the three-switch hardware testbed
//! and compare Dionysus with Tango.
//!
//! ```sh
//! cargo run --release --example network_update
//! ```

use bench::lower::{attach_triangle, lower_scenario};
use tango_sched::basic::{run_dionysus, run_tango_online, TangoMode};
use workloads::scenarios::{link_failure, traffic_engineering, Scenario};
use workloads::topology::Topology;

fn lower_and_run(scen: &Scenario, which: &str, seed: u64) -> f64 {
    // Build the testbed fresh per run so every arm sees identical
    // initial switch state.
    let mut tb = switchsim::harness::Testbed::new(seed);
    let dpids = attach_triangle(&mut tb);
    let mut dag = lower_scenario(&mut tb, &dpids, scen);
    let report = match which {
        "dionysus" => run_dionysus(&mut tb, &mut dag),
        "tango-type" => run_tango_online(&mut tb, &mut dag, TangoMode::TypeOnly),
        _ => run_tango_online(&mut tb, &mut dag, TangoMode::TypeAndPriority),
    };
    assert_eq!(report.failed, 0);
    report.makespan.as_secs_f64()
}

fn main() {
    let topo = Topology::triangle();
    let scenarios = [
        link_failure(&topo, (0, 1), 400, 0x10),
        traffic_engineering(&topo, "TE 1", 800, (2, 1, 1), 1, false, 0x11),
        traffic_engineering(&topo, "TE 2", 800, (1, 1, 1), 1, false, 0x12),
    ];

    println!("scenario   Dionysus   Tango(Type)  Tango(Type+Prio)  improvement");
    println!("--------------------------------------------------------------------");
    for (i, scen) in scenarios.iter().enumerate() {
        let seed = 0xeaa + i as u64;
        let dio = lower_and_run(scen, "dionysus", seed);
        let t_type = lower_and_run(scen, "tango-type", seed);
        let t_full = lower_and_run(scen, "tango-full", seed);
        let (adds, mods, dels) = scen.op_counts();
        println!(
            "{:<9}  {:>7.3} s  {:>9.3} s  {:>14.3} s  {:>5.1}%   (ops: {adds}a/{mods}m/{dels}d)",
            scen.name,
            dio,
            t_type,
            t_full,
            (1.0 - t_full / dio) * 100.0,
        );
    }
    println!(
        "\nThe LF scenario leaves no room for rule-type reordering (one op\n\
         class per switch — the paper's footnote 3), so Tango's win there\n\
         comes entirely from ascending-priority add ordering."
    );
}
