//! Fleet-scale inference: run full Algorithm 1 size inference against
//! every switch in a network at once, then persist the knowledge base.
//!
//! ```sh
//! cargo run --release --example fleet_inference
//! ```
//!
//! Where `concurrent_inference` interleaves fixed pattern programs,
//! this example interleaves *adaptive* pipelines: each switch's driver
//! decides its next probe from its own completions, so the four vendor
//! probes genuinely branch differently — and still come out
//! bit-identical to a sequential run, in the wall-clock (virtual) time
//! of roughly the slowest switch alone. The resulting estimates are
//! folded into a `TangoDb` and saved as JSON, the artifact a controller
//! would load on its next boot.

use ofwire::types::Dpid;
use switchsim::harness::Testbed;
use switchsim::profiles::SwitchProfile;
use tango::prelude::*;

fn testbed() -> Testbed {
    let mut tb = Testbed::new(0xf1ee7);
    tb.attach_default(Dpid(1), SwitchProfile::ovs());
    tb.attach_default(Dpid(2), SwitchProfile::vendor1());
    tb.attach_default(Dpid(3), SwitchProfile::vendor2());
    tb.attach_default(Dpid(4), SwitchProfile::vendor3());
    tb
}

fn config(dpid: Dpid) -> SizeProbeConfig {
    SizeProbeConfig {
        max_flows: 3000,
        seed: 0x5eed ^ dpid.0,
        ..SizeProbeConfig::default()
    }
}

fn main() {
    let dpids = [Dpid(1), Dpid(2), Dpid(3), Dpid(4)];

    // Sequential baseline: full size inference, one switch at a time.
    let mut seq_tb = testbed();
    let seq_start = seq_tb.now();
    let seq: Vec<SizeEstimate> = dpids
        .iter()
        .map(|&d| {
            let mut eng = ProbingEngine::new(&mut seq_tb, d, RuleKind::L3);
            probe_sizes(&mut eng, &config(d)).expect("sequential probe completes")
        })
        .collect();
    let seq_elapsed = seq_tb.now().since(seq_start);

    // Fleet: the same four inferences interleaved over one control path.
    let mut fleet_tb = testbed();
    let fleet_start = fleet_tb.now();
    let jobs: Vec<FleetJob> = dpids
        .iter()
        .map(|&d| FleetJob::size(d, RuleKind::L3, config(d)))
        .collect();
    let outcomes = run_inference(&mut fleet_tb, &jobs).expect("fleet inference completes");
    let fleet_elapsed = fleet_tb.now().since(fleet_start);

    println!("switch        fast layer    rules   packets");
    println!("-------------------------------------------");
    for (d, o) in dpids.iter().zip(&outcomes) {
        let est = o.as_size().expect("size outcome");
        println!(
            "{d}   {:>10.1}   {:>6}   {:>7}",
            est.fast_layer_size().unwrap_or(0.0),
            est.m,
            est.packets_sent
        );
    }

    let identical = dpids
        .iter()
        .zip(&seq)
        .zip(&outcomes)
        .all(|((_, s), o)| o.as_size() == Some(s));
    println!();
    println!("sequential total: {seq_elapsed}");
    println!("fleet total:      {fleet_elapsed}");
    println!(
        "overlap saving:   {:.0}%",
        100.0 * (1.0 - fleet_elapsed.as_millis_f64() / seq_elapsed.as_millis_f64())
    );
    println!("estimates identical to sequential: {identical}");

    // Persist the knowledge base where a controller would reload it.
    let mut db = TangoDb::new();
    db.ingest_fleet(&jobs, &outcomes);
    let path = std::env::temp_dir().join("tango_fleet_db.json");
    db.save_json(&path).expect("save knowledge db");
    let reloaded = TangoDb::load_json(&path).expect("reload knowledge db");
    println!(
        "knowledge db: {} switches saved to {} (round-trips: {})",
        dpids.len(),
        path.display(),
        reloaded.to_json() == db.to_json()
    );
}
