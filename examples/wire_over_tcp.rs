//! The wire protocol over a real TCP socket: a simulated switch hosted
//! by the `tango-net` reactor behind a loopback listener, probed by a
//! controller on the other end of the connection — demonstrating that
//! `ofwire`'s framing and codec are genuine transport-grade plumbing,
//! not simulation-only types.
//!
//! The server side is three lines: spawn an
//! [`AgentServer`](tango_net::server::AgentServer) in realtime mode
//! with the switch in its roster. The reactor owns the non-blocking
//! read loop, feeds raw socket bytes straight into the agent's
//! allocation-free `feed_into` path, and batches replies through a
//! reused write buffer. The controller stays a deliberately simple
//! blocking client, because that is what the wire looks like from the
//! other side.
//!
//! ```sh
//! cargo run --release --example wire_over_tcp
//! ```

use ofwire::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use switchsim::profiles::SwitchProfile;
use tango_net::server::{AgentServer, ServerMode};
use tango_net::vt::VtMsg;

const DPID: Dpid = Dpid(0xbeef);

/// A tiny blocking controller: send one message, collect replies until
/// the expected count arrives.
struct TcpController {
    stream: TcpStream,
    framer: Framer,
    next_xid: Xid,
}

impl TcpController {
    fn send(&mut self, msg: Message) -> Xid {
        let xid = self.next_xid;
        self.next_xid = xid.next();
        self.stream.write_all(&msg.to_bytes(xid)).expect("send");
        xid
    }

    fn recv(&mut self) -> (Header, Message) {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(pair) = self.framer.next_message().expect("parse") {
                return pair;
            }
            let n = self.stream.read(&mut buf).expect("recv");
            assert!(n > 0, "switch closed early");
            self.framer.push(&buf[..n]);
        }
    }
}

fn main() {
    let server = AgentServer::spawn(
        7,
        vec![(DPID, SwitchProfile::vendor3())],
        ServerMode::Realtime,
    )
    .expect("spawn agent server");
    let addr = server.addr();

    let stream = TcpStream::connect(addr).expect("connect");
    println!("[ctrl]   connected to simulated switch at {addr}");
    let mut ctrl = TcpController {
        stream,
        framer: Framer::new(),
        next_xid: Xid(1),
    };

    // Bind the connection to the roster switch, then do the OpenFlow
    // handshake over it.
    ctrl.send(VtMsg::Hello { dpid: DPID.0 }.to_message());
    ctrl.send(Message::Hello);
    let (_, hello) = ctrl.recv();
    assert_eq!(hello, Message::Hello);
    ctrl.send(Message::FeaturesRequest);
    let (_, features) = ctrl.recv();
    if let Message::FeaturesReply(fr) = &features {
        println!(
            "[ctrl]   switch {} claims {} table(s), {} port(s)",
            fr.datapath_id,
            fr.n_tables,
            fr.ports.len()
        );
    }

    // Install rules until the TCAM rejects — black-box capacity
    // discovery over an actual socket.
    let mut installed = 0u32;
    loop {
        let fm = FlowMod::add(FlowMatch::l3_for_id(installed), 40);
        ctrl.send(Message::FlowMod(fm));
        let barrier_xid = ctrl.send(Message::BarrierRequest);
        let (hdr, reply) = ctrl.recv();
        match reply {
            Message::BarrierReply => {
                assert_eq!(hdr.xid, barrier_xid);
                installed += 1;
            }
            Message::Error(e) => {
                assert!(e.is_table_full());
                // Drain the barrier reply that follows the error.
                let (_, b) = ctrl.recv();
                assert_eq!(b, Message::BarrierReply);
                break;
            }
            other => panic!("unexpected reply {other:?}"),
        }
        if installed.is_multiple_of(100) {
            println!("[ctrl]   {installed} rules installed…");
        }
    }
    println!(
        "[ctrl]   capacity discovered over TCP: {installed} rules \
         (Switch #3's L3 capacity is 767)"
    );
    assert_eq!(installed, 767);

    // Flow stats round trip.
    ctrl.send(Message::StatsRequest(StatsRequestBody::Table));
    let (_, stats) = ctrl.recv();
    if let Message::StatsReply(StatsBody::Table(tables)) = stats {
        for t in tables {
            println!(
                "[ctrl]   table '{}': {} active entries",
                t.name, t.active_count
            );
        }
    }

    drop(ctrl);
    let stats = server.shutdown().expect("server exits cleanly");
    println!(
        "[switch] session over; {} connection(s), {} messages dispatched",
        stats.accepted, stats.ops
    );
}
