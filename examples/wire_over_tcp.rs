//! The wire protocol over a real TCP socket: a simulated switch served
//! behind a loopback `TcpListener`, probed by a controller on the other
//! end of the connection — demonstrating that `ofwire`'s framing and
//! codec are genuine transport-grade plumbing, not simulation-only
//! types.
//!
//! ```sh
//! cargo run --release --example wire_over_tcp
//! ```

use ofwire::prelude::*;
use simnet::time::SimTime;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Instant;
use switchsim::agent::Agent;
use switchsim::profiles::SwitchProfile;
use switchsim::switch::Switch;

/// Serves one connection: bytes in → agent → reply bytes out.
fn serve_switch(listener: TcpListener, profile: SwitchProfile) {
    let (mut stream, peer) = listener.accept().expect("accept");
    println!("[switch] controller connected from {peer}");
    let mut agent = Agent::new(Switch::new(profile, Dpid(0xbeef), 7));
    let started = Instant::now();
    let mut buf = [0u8; 4096];
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => break, // controller hung up
            Ok(n) => n,
            Err(e) => {
                eprintln!("[switch] read error: {e}");
                break;
            }
        };
        let now = SimTime(started.elapsed().as_nanos() as u64);
        let outs = agent.feed(&buf[..n], now).expect("well-formed stream");
        for o in outs {
            if let Some(reply) = o.reply {
                stream
                    .write_all(&reply.to_bytes(o.xid))
                    .expect("write reply");
            }
        }
    }
    println!(
        "[switch] session over; {} rules installed",
        agent.switch().rule_count()
    );
}

/// A tiny blocking controller: send one message, collect replies until
/// the expected count arrives.
struct TcpController {
    stream: TcpStream,
    framer: Framer,
    next_xid: Xid,
}

impl TcpController {
    fn send(&mut self, msg: Message) -> Xid {
        let xid = self.next_xid;
        self.next_xid = xid.next();
        self.stream.write_all(&msg.to_bytes(xid)).expect("send");
        xid
    }

    fn recv(&mut self) -> (Header, Message) {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(pair) = self.framer.next_message().expect("parse") {
                return pair;
            }
            let n = self.stream.read(&mut buf).expect("recv");
            assert!(n > 0, "switch closed early");
            self.framer.push(&buf[..n]);
        }
    }
}

fn main() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || serve_switch(listener, SwitchProfile::vendor3()));

    let stream = TcpStream::connect(addr).expect("connect");
    println!("[ctrl]   connected to simulated switch at {addr}");
    let mut ctrl = TcpController {
        stream,
        framer: Framer::new(),
        next_xid: Xid(1),
    };

    // Handshake.
    ctrl.send(Message::Hello);
    let (_, hello) = ctrl.recv();
    assert_eq!(hello, Message::Hello);
    ctrl.send(Message::FeaturesRequest);
    let (_, features) = ctrl.recv();
    if let Message::FeaturesReply(fr) = &features {
        println!(
            "[ctrl]   switch {} claims {} table(s), {} port(s)",
            fr.datapath_id,
            fr.n_tables,
            fr.ports.len()
        );
    }

    // Install rules until the TCAM rejects — black-box capacity
    // discovery over an actual socket.
    let mut installed = 0u32;
    loop {
        let fm = FlowMod::add(FlowMatch::l3_for_id(installed), 40);
        ctrl.send(Message::FlowMod(fm));
        let barrier_xid = ctrl.send(Message::BarrierRequest);
        let (hdr, reply) = ctrl.recv();
        match reply {
            Message::BarrierReply => {
                assert_eq!(hdr.xid, barrier_xid);
                installed += 1;
            }
            Message::Error(e) => {
                assert!(e.is_table_full());
                // Drain the barrier reply that follows the error.
                let (_, b) = ctrl.recv();
                assert_eq!(b, Message::BarrierReply);
                break;
            }
            other => panic!("unexpected reply {other:?}"),
        }
        if installed.is_multiple_of(100) {
            println!("[ctrl]   {installed} rules installed…");
        }
    }
    println!(
        "[ctrl]   capacity discovered over TCP: {installed} rules \
         (Switch #3's L3 capacity is 767)"
    );
    assert_eq!(installed, 767);

    // Flow stats round trip.
    ctrl.send(Message::StatsRequest(StatsRequestBody::Table));
    let (_, stats) = ctrl.recv();
    if let Message::StatsReply(StatsBody::Table(tables)) = stats {
        for t in tables {
            println!(
                "[ctrl]   table '{}': {} active entries",
                t.name, t.active_count
            );
        }
    }

    drop(ctrl);
    server.join().expect("server thread");
}
